//! The inverted index: dictionary, compressed posting lists, and the
//! precomputed BM25 constants the scoring units load at query time.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::HashMap;
use std::sync::Arc;

use crate::block::EncodedList;
use crate::bounds::ListBounds;
use crate::codec::CodecId;
use crate::error::IndexError;
use crate::mmap::Mmap;
use crate::partition::Partitioner;
use crate::posting::{DocId, PostingList};
use crate::score::{Bm25Params, Fixed};
use crate::stats::IndexSizeStats;

/// Dense identifier of a term in the index dictionary.
pub type TermId = u32;

/// Where an index's payload bytes live: owned heap memory (built in RAM or
/// deserialized the classic way) or a window of a memory-mapped index file
/// (the zero-copy storage layer, [`crate::storage`]).
///
/// This is reporting/bookkeeping only — every consumer reads postings
/// through the same `&[u8]` accessors regardless of source.
#[derive(Debug, Clone, Default)]
pub enum IndexSource {
    /// All bytes owned on the heap.
    #[default]
    Heap,
    /// Payloads served from a file mapping.
    Mapped {
        /// The shared mapping (kept alive by the index).
        map: Arc<Mmap>,
        /// Start of this index's bytes within the mapping (0 for a plain
        /// index file; the shard body offset for manifest shards).
        span_start: usize,
        /// Length of this index's bytes within the mapping.
        span_len: usize,
    },
}

impl IndexSource {
    /// True for a mapped source.
    pub fn is_mapped(&self) -> bool {
        matches!(self, IndexSource::Mapped { .. })
    }

    /// Short human-readable tag (`"heap"` / `"mmap"`).
    pub fn kind(&self) -> &'static str {
        match self {
            IndexSource::Heap => "heap",
            IndexSource::Mapped { .. } => "mmap",
        }
    }

    /// Bytes of the mapping this index spans (0 for heap indexes).
    pub fn mapped_bytes(&self) -> u64 {
        match self {
            IndexSource::Heap => 0,
            IndexSource::Mapped { span_len, .. } => *span_len as u64,
        }
    }

    /// Page-cache residency estimate for this index's span of the mapping
    /// (`mincore`-based, advisory). `None` for heap indexes or when the
    /// estimate is unavailable.
    pub fn resident_bytes(&self) -> Option<u64> {
        match self {
            IndexSource::Heap => None,
            IndexSource::Mapped { map, span_start, span_len } => {
                map.resident_bytes_in(*span_start, *span_len)
            }
        }
    }
}

/// Per-term information exposed by the dictionary.
#[derive(Debug, Clone, PartialEq)]
pub struct TermInfo {
    /// The term string.
    pub term: String,
    /// Document frequency (length of the posting list).
    pub df: u64,
    /// Precomputed `idf · (k₁ + 1)` in Q16.16 (loaded by the scoring unit
    /// at the start of query processing, §4.3).
    pub idf_bar: Fixed,
}

/// A complete inverted index in the IIU storage scheme.
///
/// Construct one with [`crate::IndexBuilder`] (from raw text) or
/// [`InvertedIndex::from_lists`] (from pre-built posting lists, as the
/// synthetic workload generator does).
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    dictionary: HashMap<String, TermId>,
    terms: Vec<TermInfo>,
    lists: Vec<EncodedList>,
    bounds: Vec<ListBounds>,
    doc_lens: Vec<u32>,
    dl_bars: Vec<Fixed>,
    avgdl: f64,
    params: Bm25Params,
    partitioner: Partitioner,
    codec: CodecId,
    source: IndexSource,
}

/// Equality is over logical content; [`IndexSource`] is a representation
/// detail (a mapped index must compare equal to the heap index it was
/// serialized from — the property the source-equivalence matrix asserts).
impl PartialEq for InvertedIndex {
    fn eq(&self, other: &Self) -> bool {
        self.dictionary == other.dictionary
            && self.terms == other.terms
            && self.lists == other.lists
            && self.bounds == other.bounds
            && self.doc_lens == other.doc_lens
            && self.dl_bars == other.dl_bars
            && self.avgdl == other.avgdl
            && self.params == other.params
            && self.partitioner == other.partitioner
            && self.codec == other.codec
    }
}

impl InvertedIndex {
    /// Builds an index from pre-constructed posting lists.
    ///
    /// `doc_lens[d]` must be the token length of document `d`; every docID
    /// referenced by a list must be `< doc_lens.len()`.
    ///
    /// # Errors
    ///
    /// Returns an error if a list references an out-of-range docID or fails
    /// to encode (see [`EncodedList::encode`]).
    pub fn from_lists(
        lists: Vec<(String, PostingList)>,
        doc_lens: Vec<u32>,
        partitioner: Partitioner,
        params: Bm25Params,
    ) -> Result<Self, IndexError> {
        Self::from_lists_codec(lists, doc_lens, partitioner, params, CodecId::default())
    }

    /// [`from_lists`](Self::from_lists) with an explicit block codec: the
    /// partitioner minimizes that codec's cost model and every list's
    /// payload is encoded with it.
    ///
    /// # Errors
    ///
    /// Same contract as [`from_lists`](Self::from_lists).
    pub fn from_lists_codec(
        lists: Vec<(String, PostingList)>,
        doc_lens: Vec<u32>,
        partitioner: Partitioner,
        params: Bm25Params,
        codec: CodecId,
    ) -> Result<Self, IndexError> {
        let n_docs = doc_lens.len() as u64;
        let avgdl = if doc_lens.is_empty() {
            1.0
        } else {
            doc_lens.iter().map(|&l| f64::from(l)).sum::<f64>() / n_docs as f64
        };
        let with_idf = lists
            .into_iter()
            .map(|(term, list)| {
                let idf_bar = Fixed::from_f64(params.idf_bar(n_docs, list.len() as u64));
                (term, list, idf_bar)
            })
            .collect();
        Self::from_lists_with_stats_codec(
            with_idf,
            doc_lens,
            avgdl,
            partitioner,
            params,
            codec,
        )
    }

    /// Builds an index from posting lists with *explicit* collection
    /// statistics: a supplied `avgdl` and a per-term `idf_bar` instead of
    /// ones recomputed from the local lists.
    ///
    /// This is the constructor document sharding relies on: a shard holds a
    /// fraction of the corpus, but its scoring constants (and therefore its
    /// block score bounds) must come from the *global* collection so shard
    /// results merge bit-identically with the unsharded engine.
    /// [`from_lists`](Self::from_lists) is the common case and simply feeds
    /// locally computed stats through here.
    ///
    /// # Errors
    ///
    /// Returns an error if a list references an out-of-range docID or fails
    /// to encode (see [`EncodedList::encode`]).
    pub fn from_lists_with_stats(
        lists: Vec<(String, PostingList, Fixed)>,
        doc_lens: Vec<u32>,
        avgdl: f64,
        partitioner: Partitioner,
        params: Bm25Params,
    ) -> Result<Self, IndexError> {
        Self::from_lists_with_stats_codec(
            lists,
            doc_lens,
            avgdl,
            partitioner,
            params,
            CodecId::default(),
        )
    }

    /// [`from_lists_with_stats`](Self::from_lists_with_stats) with an
    /// explicit block codec.
    ///
    /// # Errors
    ///
    /// Same contract as [`from_lists_with_stats`](Self::from_lists_with_stats).
    pub fn from_lists_with_stats_codec(
        lists: Vec<(String, PostingList, Fixed)>,
        doc_lens: Vec<u32>,
        avgdl: f64,
        partitioner: Partitioner,
        params: Bm25Params,
        codec: CodecId,
    ) -> Result<Self, IndexError> {
        let n_docs = doc_lens.len() as u64;

        // Per-document constants first: block score bounds are computed
        // from the same dl̄ table the scoring datapath will read.
        let dl_bars: Vec<Fixed> =
            doc_lens.iter().map(|&l| Fixed::from_f64(params.dl_bar(l, avgdl))).collect();

        let mut dictionary = HashMap::with_capacity(lists.len());
        let mut terms = Vec::with_capacity(lists.len());
        let mut encoded = Vec::with_capacity(lists.len());
        let mut bounds = Vec::with_capacity(lists.len());
        for (term, list, idf_bar) in lists {
            if let Some(last) = list.as_slice().last() {
                if u64::from(last.doc_id) >= n_docs {
                    return Err(IndexError::CorruptIndex {
                        context: "posting list references docID beyond corpus",
                    });
                }
            }
            let id = terms.len() as TermId;
            let df = list.len() as u64;
            let partition = partitioner.partition_for(&list, codec);
            bounds.push(ListBounds::compute(list.as_slice(), &partition, idf_bar, &dl_bars));
            encoded.push(EncodedList::encode_with(&list, &partition, codec)?);
            terms.push(TermInfo { idf_bar, df, term: term.clone() });
            dictionary.insert(term, id);
        }

        Ok(InvertedIndex {
            dictionary,
            terms,
            lists: encoded,
            bounds,
            doc_lens,
            dl_bars,
            avgdl,
            params,
            partitioner,
            codec,
            source: IndexSource::Heap,
        })
    }

    /// Assembles an index directly from already-encoded parts — the
    /// zero-copy load path ([`crate::storage`]), which must not decode and
    /// re-encode every list the way [`crate::io::deserialize`] does.
    ///
    /// The caller is responsible for having validated `lists` (the
    /// [`EncodedList::from_stored_parts`] constructor does) and `bounds`
    /// (structurally via [`ListBounds::validate_against`], with content
    /// integrity resting on the section CRCs). This constructor checks the
    /// cross-field invariants: table lengths agree, term names are unique,
    /// docIDs stay inside the corpus, and df matches each list.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::CorruptIndex`] naming the violated invariant.
    #[allow(clippy::too_many_arguments)] // mirrors the on-disk section order
    pub(crate) fn from_stored_parts(
        terms: Vec<TermInfo>,
        lists: Vec<EncodedList>,
        bounds: Vec<ListBounds>,
        doc_lens: Vec<u32>,
        avgdl: f64,
        params: Bm25Params,
        partitioner: Partitioner,
        codec: CodecId,
        source: IndexSource,
    ) -> Result<Self, IndexError> {
        if terms.len() != lists.len() {
            return Err(IndexError::CorruptIndex { context: "term/list count mismatch" });
        }
        if bounds.len() != lists.len() {
            return Err(IndexError::CorruptIndex { context: "score bounds count" });
        }
        let n_docs = doc_lens.len() as u64;
        let mut dictionary = HashMap::with_capacity(terms.len());
        for (id, (info, list)) in terms.iter().zip(&lists).enumerate() {
            if info.df != list.num_postings() {
                return Err(IndexError::CorruptIndex { context: "document frequency" });
            }
            if let Some(&last) = list.skips().last() {
                if u64::from(last) >= n_docs {
                    return Err(IndexError::CorruptIndex {
                        context: "posting list references docID beyond corpus",
                    });
                }
            }
            if dictionary.insert(info.term.clone(), id as TermId).is_some() {
                return Err(IndexError::CorruptIndex { context: "duplicate term" });
            }
        }
        let dl_bars: Vec<Fixed> =
            doc_lens.iter().map(|&l| Fixed::from_f64(params.dl_bar(l, avgdl))).collect();
        Ok(InvertedIndex {
            dictionary,
            terms,
            lists,
            bounds,
            doc_lens,
            dl_bars,
            avgdl,
            params,
            partitioner,
            codec,
            source,
        })
    }

    /// Where this index's payload bytes live (heap vs mapping).
    pub fn source(&self) -> &IndexSource {
        &self.source
    }

    /// Runs the deferred record checksum of `id`'s list, if it carries one
    /// (lists served from a mapping verify lazily on first touch). The
    /// no-op for heap indexes; engines call this when resolving query
    /// terms so late-discovered corruption surfaces as a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::ChecksumMismatch`] if the mapped record's
    /// bytes no longer hash to the stored section CRC.
    pub fn verify_term(&self, id: TermId) -> Result<(), IndexError> {
        match self.lists.get(id as usize) {
            Some(list) => list.ensure_verified(),
            None => Ok(()),
        }
    }

    /// Number of documents in the corpus.
    pub fn num_docs(&self) -> u64 {
        self.doc_lens.len() as u64
    }

    /// Number of distinct terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Average document length used for BM25 normalization.
    pub fn avgdl(&self) -> f64 {
        self.avgdl
    }

    /// BM25 parameters the index was built with.
    pub fn params(&self) -> Bm25Params {
        self.params
    }

    /// Partitioner the lists were encoded with.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// Block codec every posting list is encoded with.
    pub fn codec(&self) -> CodecId {
        self.codec
    }

    /// Looks up a term's identifier.
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        self.dictionary.get(term).copied()
    }

    /// Per-term dictionary entry.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn term_info(&self, id: TermId) -> &TermInfo {
        &self.terms[id as usize]
    }

    /// All terms in id order.
    pub fn terms(&self) -> &[TermInfo] {
        &self.terms
    }

    /// Compressed posting list of a term.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn encoded_list(&self, id: TermId) -> &EncodedList {
        &self.lists[id as usize]
    }

    /// Per-block score upper bounds of a term's list (the block-max
    /// metadata the pruned top-k mode skips with).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn list_bounds(&self, id: TermId) -> &ListBounds {
        &self.bounds[id as usize]
    }

    /// All per-list score bounds, in term-id order.
    pub fn bounds(&self) -> &[ListBounds] {
        &self.bounds
    }

    /// Decodes the posting list of `term` in full.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownTerm`] if the term is absent.
    pub fn decode_term(&self, term: &str) -> Result<PostingList, IndexError> {
        let id = self
            .term_id(term)
            .ok_or_else(|| IndexError::UnknownTerm { term: term.to_owned() })?;
        Ok(self.encoded_list(id).decode_all())
    }

    /// Token length of document `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn doc_len(&self, d: DocId) -> u32 {
        self.doc_lens[d as usize]
    }

    /// All document lengths.
    pub fn doc_lens(&self) -> &[u32] {
        &self.doc_lens
    }

    /// Precomputed per-document `dl̄(d)` constant in Q16.16 (the table the
    /// scoring unit reads from memory per scored document).
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn dl_bar(&self, d: DocId) -> Fixed {
        self.dl_bars[d as usize]
    }

    /// The full `dl̄` table (one entry per document).
    pub fn dl_bars(&self) -> &[Fixed] {
        &self.dl_bars
    }

    /// Checks every structural invariant the query hot path relies on:
    /// each encoded list passes [`EncodedList::validate`], the dictionary
    /// and term table agree, and the per-document tables are sized to the
    /// corpus.
    ///
    /// A [`deserialize`](crate::io::deserialize)d index always passes (the
    /// reader rebuilds lists from decoded postings); this is the
    /// belt-and-braces check for indexes assembled by other means, and the
    /// oracle the fault-injection harness holds accepted loads against.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::CorruptIndex`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), IndexError> {
        if self.terms.len() != self.lists.len() {
            return Err(IndexError::CorruptIndex { context: "term/list count mismatch" });
        }
        if self.dictionary.len() != self.terms.len() {
            return Err(IndexError::CorruptIndex { context: "dictionary size" });
        }
        if self.dl_bars.len() != self.doc_lens.len() {
            return Err(IndexError::CorruptIndex { context: "dl-bar table size" });
        }
        if self.bounds.len() != self.lists.len() {
            return Err(IndexError::CorruptIndex { context: "score bounds count" });
        }
        let n_docs = self.doc_lens.len() as u64;
        for (id, (info, list)) in self.terms.iter().zip(&self.lists).enumerate() {
            if self.dictionary.get(&info.term) != Some(&(id as TermId)) {
                return Err(IndexError::CorruptIndex { context: "dictionary mapping" });
            }
            if list.codec() != self.codec {
                return Err(IndexError::CorruptIndex { context: "list/index codec mismatch" });
            }
            list.validate()?;
            if info.df != list.num_postings() {
                return Err(IndexError::CorruptIndex { context: "document frequency" });
            }
            if let Some(&last) = list.skips().last() {
                if u64::from(last) >= n_docs {
                    return Err(IndexError::CorruptIndex {
                        context: "posting list references docID beyond corpus",
                    });
                }
            }
            // Pruning correctness rests on the bounds, so hold them to the
            // decode-and-recompute oracle, not just structural checks.
            let bounds = &self.bounds[id];
            bounds.validate_against(list)?;
            if *bounds != ListBounds::recompute(list, info.idf_bar, &self.dl_bars)? {
                return Err(IndexError::CorruptIndex { context: "score bounds mismatch" });
            }
        }
        Ok(())
    }

    /// Aggregate size accounting across all posting lists.
    pub fn size_stats(&self) -> IndexSizeStats {
        let mut stats = IndexSizeStats::default();
        for list in &self.lists {
            stats.postings += list.num_postings();
            stats.payload_bytes += list.payload().len() as u64;
            stats.num_blocks += list.num_blocks() as u64;
            stats.model_bits += list.model_bits();
        }
        stats.metadata_bytes = stats.num_blocks * 8;
        stats.skip_bytes = stats.num_blocks * 4;
        stats.uncompressed_bytes = stats.postings * 8;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posting::Posting;

    fn tiny_index() -> InvertedIndex {
        // The Fig. 3 example: business and cameo.
        let business = PostingList::from_sorted(
            [0u32, 2, 11, 20, 38, 46].iter().map(|&d| Posting::new(d, 1)).collect(),
        );
        let cameo = PostingList::from_sorted(
            [1u32, 11, 38, 39, 46, 55, 62].iter().map(|&d| Posting::new(d, 2)).collect(),
        );
        InvertedIndex::from_lists(
            vec![("business".into(), business), ("cameo".into(), cameo)],
            vec![10; 63],
            Partitioner::default(),
            Bm25Params::default(),
        )
        .unwrap()
    }

    #[test]
    fn lookup_and_decode() {
        let idx = tiny_index();
        assert_eq!(idx.num_docs(), 63);
        assert_eq!(idx.num_terms(), 2);
        let id = idx.term_id("business").unwrap();
        assert_eq!(idx.term_info(id).df, 6);
        assert_eq!(idx.decode_term("business").unwrap().doc_ids(), vec![0, 2, 11, 20, 38, 46]);
        assert!(idx.term_id("zebra").is_none());
        assert!(matches!(idx.decode_term("zebra"), Err(IndexError::UnknownTerm { .. })));
    }

    #[test]
    fn rejects_docid_beyond_corpus() {
        let list = PostingList::from_sorted(vec![Posting::new(100, 1)]);
        let err = InvertedIndex::from_lists(
            vec![("t".into(), list)],
            vec![10; 50],
            Partitioner::default(),
            Bm25Params::default(),
        );
        assert!(matches!(err, Err(IndexError::CorruptIndex { .. })));
    }

    #[test]
    fn idf_bar_reflects_rarity() {
        let idx = tiny_index();
        let business = idx.term_info(idx.term_id("business").unwrap()).idf_bar;
        let cameo = idx.term_info(idx.term_id("cameo").unwrap()).idf_bar;
        // business (df 6) is rarer than cameo (df 7).
        assert!(business > cameo);
    }

    #[test]
    fn dl_bar_equals_k1_at_avgdl() {
        let idx = tiny_index();
        // All docs have length 10 = avgdl, so dl_bar = k1 = 1.2.
        assert!((idx.dl_bar(0).to_f64() - 1.2).abs() < 1e-3);
        assert!((idx.avgdl() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn size_stats_add_up() {
        let idx = tiny_index();
        let s = idx.size_stats();
        assert_eq!(s.postings, 13);
        assert_eq!(s.uncompressed_bytes, 13 * 8);
        assert!(s.num_blocks >= 2);
        assert_eq!(s.metadata_bytes, s.num_blocks * 8);
        assert_eq!(s.skip_bytes, s.num_blocks * 4);
        assert!(s.compressed_bytes() > 0);
        assert!(s.compression_ratio() > 1.0);
    }

    #[test]
    fn validate_passes_on_built_index_and_catches_tampering() {
        let idx = tiny_index();
        assert!(idx.validate().is_ok());

        let mut bad = idx.clone();
        bad.terms[0].df += 1;
        assert!(matches!(
            bad.validate(),
            Err(IndexError::CorruptIndex { context: "document frequency" })
        ));

        let mut bad = idx.clone();
        bad.dictionary.insert("business".into(), 1);
        assert!(matches!(
            bad.validate(),
            Err(IndexError::CorruptIndex { context: "dictionary mapping" })
        ));

        let mut bad = idx.clone();
        bad.doc_lens.truncate(5); // lists now reference docIDs beyond corpus
        assert!(bad.validate().is_err());

        let mut bad = idx;
        bad.lists.pop();
        assert!(matches!(
            bad.validate(),
            Err(IndexError::CorruptIndex { context: "term/list count mismatch" })
        ));
    }

    #[test]
    fn bounds_cover_every_list_and_tampering_is_caught() {
        let idx = tiny_index();
        assert_eq!(idx.bounds().len(), idx.num_terms());
        for id in 0..idx.num_terms() as TermId {
            let list = idx.encoded_list(id);
            let b = idx.list_bounds(id);
            assert_eq!(b.num_blocks(), list.num_blocks());
            // The exact-maximum bound is attained by some posting.
            let info = idx.term_info(id);
            let attained = list.decode_all().as_slice().iter().any(|p| {
                crate::score::term_score_fixed(info.idf_bar, idx.dl_bar(p.doc_id), p.tf)
                    == b.max_ub()
            });
            assert!(attained, "max_ub must be an attained score, not a loose bound");
        }

        let mut bad = idx.clone();
        bad.bounds.pop();
        assert!(matches!(
            bad.validate(),
            Err(IndexError::CorruptIndex { context: "score bounds count" })
        ));

        let mut bad = idx;
        let mut ubs = bad.bounds[0].ubs().to_vec();
        ubs[0] = ubs[0].saturating_add(crate::score::Fixed::ONE);
        let max_tfs = bad.bounds[0].max_tfs().to_vec();
        bad.bounds[0] = ListBounds::from_raw_parts(ubs, max_tfs);
        assert!(bad.validate().is_err(), "inflated bound must fail the recompute oracle");
    }

    #[test]
    fn empty_corpus_is_fine() {
        let idx = InvertedIndex::from_lists(
            Vec::new(),
            Vec::new(),
            Partitioner::default(),
            Bm25Params::default(),
        )
        .unwrap();
        assert_eq!(idx.num_docs(), 0);
        assert_eq!(idx.num_terms(), 0);
    }
}
