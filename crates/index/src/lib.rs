//! Inverted-index substrate for the IIU reproduction.
//!
//! This crate implements the *indexing scheme* half of the IIU
//! hardware/software co-design (Heo et al., ASPLOS 2020, §3):
//!
//! * posting lists of `(docID, term-frequency)` tuples ([`Posting`],
//!   [`PostingList`]);
//! * delta (d-gap) encoding of docIDs ([`delta`]);
//! * per-block bit-packing of `(d-gap, tf)` pairs ([`bitpack`], [`block`]);
//! * pluggable block codecs — bit-packed (default), Stream-VByte and a
//!   SIMD-BP128-style vertical layout with runtime-dispatched SSE2/AVX2
//!   kernels ([`codec`]);
//! * the dynamic-programming block partitioner minimizing the codec's
//!   cost model, `C(B_i) = (b_dn + b_tf) · |B_i| + 96` bits for the
//!   default codec ([`partition`]);
//! * per-block metadata words (5 + 5 + 11 + 43 bits) and skip lists
//!   ([`block::BlockMeta`], [`block::EncodedList`]);
//! * BM25 scoring with the hardware's precomputed sub-expressions and
//!   Q16.16 fixed-point arithmetic ([`score`]);
//! * an index builder, tokenizer and binary file format ([`builder`],
//!   [`tokenize`], [`io`]).
//!
//! # Example
//!
//! ```
//! use iiu_index::{IndexBuilder, BuildOptions};
//!
//! let mut builder = IndexBuilder::new(BuildOptions::default());
//! builder.add_document("the quick brown fox");
//! builder.add_document("the lazy dog");
//! builder.add_document("the quick dog");
//! let index = builder.build();
//!
//! let list = index.decode_term("quick").unwrap();
//! assert_eq!(list.iter().map(|p| p.doc_id).collect::<Vec<_>>(), vec![0, 2]);
//! ```

// The hardened load/query modules (io, checksum, faultinject, index,
// block, bounds) re-deny unwrap/expect locally; the rest of the crate documents its
// panics instead. verify.sh runs clippy with -D clippy::unwrap_used
// -D clippy::expect_used, which these scoped attributes focus on the
// modules where a panic would take down a serving thread.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod bitpack;
pub mod block;
pub mod bounds;
pub mod builder;
pub mod checksum;
pub mod codec;
pub mod delta;
pub mod error;
pub mod faultinject;
pub mod incremental;
pub mod index;
pub mod io;
pub mod memtable;
pub mod mmap;
pub mod partition;
pub mod positions;
pub mod posting;
pub mod recovery;
pub mod reorder;
pub mod score;
pub mod segment;
pub mod shard;
pub mod stats;
pub mod storage;
pub mod tokenize;
pub mod wal;

pub use block::{BlockMeta, EncodedList};
pub use bounds::ListBounds;
pub use builder::{BuildOptions, IndexBuilder};
pub use checksum::{crc32, Crc32};
pub use codec::{BlockCodec, CodecId};
pub use error::IndexError;
pub use faultinject::{
    corrupt, mapped_sharded_survival_report, mapped_survival_report, survival_report, Corruption,
    MappedSurvivalReport, ShardChaosPlan, SplitMix64, SurvivalReport,
};
pub use incremental::{IncrementalIndex, IncrementalOptions};
pub use index::{IndexSource, InvertedIndex, TermId, TermInfo};
pub use memtable::WriteBuffer;
pub use mmap::Mmap;
pub use partition::Partitioner;
pub use positions::{PositionIndex, PositionList};
pub use posting::{DocId, Posting, PostingList, TermFreq};
pub use recovery::RecoveryReport;
pub use score::{Bm25Params, Fixed};
pub use segment::{LoadedSegment, SegmentMeta};
pub use shard::{ShardBalance, ShardedIndex};
pub use stats::IndexSizeStats;
pub use storage::MappedIndex;
pub use wal::{IngestDoc, Wal, WalReplay};
