//! Offline index construction from raw documents (paper §2.1: "This index
//! structure is often pre-constructed offline").

use std::collections::BTreeMap;

use crate::codec::CodecId;
use crate::index::InvertedIndex;
use crate::partition::Partitioner;
use crate::positions::{PositionIndex, PositionList};
use crate::posting::{DocId, PostingList};
use crate::score::Bm25Params;
use crate::tokenize::tokenize;

/// Options controlling index construction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BuildOptions {
    /// Block partitioning strategy (dynamic with `maxSize = 256` by
    /// default, the paper's choice).
    pub partitioner: Partitioner,
    /// BM25 parameters baked into the precomputed score constants.
    pub bm25: Bm25Params,
    /// Also record token positions (needed for phrase queries; adds a
    /// sidecar — see [`crate::positions`]).
    pub track_positions: bool,
    /// Block codec the posting-list payloads are encoded with (the
    /// paper's bit-packed format by default).
    pub codec: CodecId,
}

/// Incremental builder: feed documents, then [`IndexBuilder::build`].
///
/// # Example
///
/// ```
/// use iiu_index::{IndexBuilder, BuildOptions};
/// let mut b = IndexBuilder::new(BuildOptions::default());
/// let d0 = b.add_document("hello world");
/// let d1 = b.add_document("hello hello");
/// assert_eq!((d0, d1), (0, 1));
/// let index = b.build();
/// let hello = index.decode_term("hello").unwrap();
/// assert_eq!(hello.as_slice()[1].tf, 2);
/// ```
#[derive(Debug, Default)]
pub struct IndexBuilder {
    options: BuildOptions,
    // BTreeMap so that term ids are assigned in lexicographic order,
    // making builds deterministic regardless of insertion order.
    lists: BTreeMap<String, PostingList>,
    positions: BTreeMap<String, Vec<(DocId, Vec<u32>)>>,
    doc_lens: Vec<u32>,
}

impl IndexBuilder {
    /// Creates a builder with the given options.
    pub fn new(options: BuildOptions) -> Self {
        IndexBuilder { options, ..Default::default() }
    }

    /// Tokenizes `text` and adds it as the next document; returns its docID.
    pub fn add_document(&mut self, text: &str) -> DocId {
        let tokens = tokenize(text);
        self.add_document_tokens(tokens.iter().map(|s| s.as_str()))
    }

    /// Adds a pre-tokenized document; returns its docID.
    pub fn add_document_tokens<'a, I>(&mut self, tokens: I) -> DocId
    where
        I: IntoIterator<Item = &'a str>,
    {
        let doc_id = self.doc_lens.len() as DocId;
        let mut tfs: BTreeMap<&str, u32> = BTreeMap::new();
        let mut poss: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
        let mut len = 0u32;
        for t in tokens {
            *tfs.entry(t).or_insert(0) += 1;
            if self.options.track_positions {
                poss.entry(t).or_default().push(len);
            }
            len += 1;
        }
        for (term, tf) in tfs {
            self.lists.entry(term.to_owned()).or_default().push(doc_id, tf);
        }
        for (term, ps) in poss {
            self.positions.entry(term.to_owned()).or_default().push((doc_id, ps));
        }
        self.doc_lens.push(len);
        doc_id
    }

    /// Number of documents added so far.
    pub fn num_docs(&self) -> usize {
        self.doc_lens.len()
    }

    /// Number of distinct terms seen so far.
    pub fn num_terms(&self) -> usize {
        self.lists.len()
    }

    /// Finalizes the index: partitions and bit-packs every posting list and
    /// precomputes the BM25 constants.
    ///
    /// # Panics
    ///
    /// Panics if encoding fails, which cannot happen for lists produced by
    /// this builder (docIDs are dense and bounded).
    pub fn build(self) -> InvertedIndex {
        InvertedIndex::from_lists_codec(
            self.lists.into_iter().collect(),
            self.doc_lens,
            self.options.partitioner,
            self.options.bm25,
            self.options.codec,
        )
        .expect("builder-produced lists always encode")
    }

    /// Finalizes the index together with its positional sidecar (requires
    /// [`BuildOptions::track_positions`]; the sidecar is empty otherwise).
    pub fn build_with_positions(mut self) -> (InvertedIndex, PositionIndex) {
        let mut pos_index = PositionIndex::new();
        for (term, docs) in std::mem::take(&mut self.positions) {
            pos_index.insert(term, PositionList::from_docs(&docs));
        }
        (self.build(), pos_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_fig3_style_index() {
        let mut b = IndexBuilder::new(BuildOptions::default());
        b.add_document("business lausanne");
        b.add_document("cameo");
        b.add_document("business cameo business");
        assert_eq!(b.num_docs(), 3);
        assert_eq!(b.num_terms(), 3);
        let idx = b.build();
        let business = idx.decode_term("business").unwrap();
        assert_eq!(business.doc_ids(), vec![0, 2]);
        assert_eq!(business.as_slice()[1].tf, 2);
        assert_eq!(idx.doc_len(2), 3);
    }

    #[test]
    fn empty_document_is_allowed() {
        let mut b = IndexBuilder::new(BuildOptions::default());
        let d = b.add_document("");
        let idx = b.build();
        assert_eq!(idx.doc_len(d), 0);
        assert_eq!(idx.num_docs(), 1);
    }

    #[test]
    fn term_ids_are_lexicographic() {
        let mut b = IndexBuilder::new(BuildOptions::default());
        b.add_document("zebra apple");
        let idx = b.build();
        assert_eq!(idx.term_id("apple"), Some(0));
        assert_eq!(idx.term_id("zebra"), Some(1));
    }

    #[test]
    fn deterministic_across_insertion_orders() {
        let mut b1 = IndexBuilder::new(BuildOptions::default());
        b1.add_document_tokens(["a", "b", "c"]);
        b1.add_document_tokens(["c", "b"]);
        let mut b2 = IndexBuilder::new(BuildOptions::default());
        b2.add_document_tokens(["c", "a", "b"]);
        b2.add_document_tokens(["b", "c"]);
        assert_eq!(b1.build(), b2.build());
    }
}
