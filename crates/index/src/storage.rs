//! Zero-copy, mmap-backed index loading (DESIGN.md §19).
//!
//! [`crate::io::deserialize`] materializes every posting list on the
//! heap, decoding and re-encoding each payload as it goes — a fine
//! trade for laptop-sized corpora and the strongest possible integrity
//! check, but it caps the corpus at RAM and pays a full decode before
//! the first query. This module is the other end of that trade: it
//! memory-maps an index file (any plain format v1–v4, or a
//! `MAGIC_SHARD*` manifest) and assembles an [`InvertedIndex`] whose
//! payload bytes are *borrowed windows of the mapping*. No posting byte
//! is copied; the page cache is the storage tier.
//!
//! # Integrity contract
//!
//! The two load paths verify the same checksums, at different times:
//!
//! * **Eager at open** — magic, header CRC, doc-length-table CRC,
//!   score-bounds-section CRC (v3/v4), and every structural invariant of
//!   every term record: metadata/skip table shapes, posting-count
//!   cross-checks, payload byte ranges, strictly increasing skip values
//!   ([`EncodedList::validate`]). Opening a file costs reading the
//!   header, tables and record frames — not the payload pages.
//! * **Lazy on first touch** — each term record's section CRC (which
//!   covers its payload bytes). The stored CRC and record byte range are
//!   retained per list ([`crate::block::LazyCrc`]); the first decode of
//!   any block of that list (or an engine's `verify_term` at query
//!   resolve) hashes the record and caches the verdict. Corruption
//!   discovered late is a typed [`IndexError::ChecksumMismatch`] — never
//!   a panic, never an out-of-bounds read.
//!
//! What the mapped path does **not** re-verify, by design (the documented
//! weaker-integrity/zero-copy trade against [`crate::io::deserialize`]):
//!
//! * the whole-file footer CRC (hashing it would fault in every page —
//!   the per-section CRCs cover all content bytes anyway; only v1 files,
//!   which have no CRCs at all, lose real protection here);
//! * the score-bounds recompute oracle on v3/v4 files: stored bounds are
//!   trusted after their section CRC and a structural cross-check
//!   against each list ([`ListBounds::validate_against`]). A file
//!   *written* wrong with consistent CRCs would mis-prune; `iiu
//!   inspect`'s deep validation still catches that offline.
//! * intra-block docID monotonicity (the heap loader's decode pass
//!   checks it): a CRC-valid record decodes to whatever it encodes.
//!
//! Formats without stored derived data fall back to computing it at
//! open: v1/v2 files and every manifest shard body recompute score
//! bounds, which decodes each payload once (verifying the lazy CRCs as a
//! side effect) — still without materializing any owned payload copy.
//!
//! The `unsafe` mapping itself lives in [`crate::mmap`]; see that
//! module's safety argument (immutable published files, `SIGBUS` on
//! concurrent truncation outside the threat model).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::path::Path;
use std::sync::Arc;

use crate::block::{BlockMeta, EncodedList, LazyCrc, PayloadBuf};
use crate::bounds::ListBounds;
use crate::codec::CodecId;
use crate::error::IndexError;
use crate::index::{IndexSource, InvertedIndex, TermInfo};
use crate::io::{self, Reader};
use crate::mmap::Mmap;
use crate::score::Fixed;
use crate::shard::ShardedIndex;

/// A mapped index of either shape, as dispatched by the file's magic.
#[derive(Debug)]
pub enum MappedIndex {
    /// A plain (unsharded) index file.
    Plain(InvertedIndex),
    /// A shard manifest.
    Sharded(ShardedIndex),
}

/// Maps `path` and loads whatever index shape its magic declares — the
/// CLI's one-stop mmap entry point.
///
/// # Errors
///
/// Returns [`IndexError::Io`] if the file cannot be mapped, plus every
/// parse-time error of [`map_index`] / [`map_sharded`].
pub fn open(path: &Path) -> Result<MappedIndex, IndexError> {
    let map = Arc::new(Mmap::open(path)?);
    if io::is_sharded(map.as_slice()) {
        Ok(MappedIndex::Sharded(map_sharded_from(map)?))
    } else {
        Ok(MappedIndex::Plain(map_index_from(map)?))
    }
}

/// Maps a plain index file (format v1–v4) without materializing payload
/// bytes. See the module docs for the integrity contract.
///
/// # Errors
///
/// Returns [`IndexError::Io`] on mapping failure,
/// [`IndexError::UnsupportedFormat`] on an unknown magic,
/// [`IndexError::ChecksumMismatch`] when an eagerly-verified section CRC
/// fails, and [`IndexError::CorruptIndex`] on structural violations.
pub fn map_index(path: &Path) -> Result<InvertedIndex, IndexError> {
    map_index_from(Arc::new(Mmap::open(path)?))
}

/// Maps a shard manifest (`MAGIC_SHARD`/`_V2`/`_V3`). Shard score bounds
/// are not stored in manifests, so each shard's payload is decoded once
/// at open to recompute them (verifying the record CRCs as a side
/// effect) — the payload bytes still stay in the mapping.
///
/// # Errors
///
/// Same contract as [`map_index`].
pub fn map_sharded(path: &Path) -> Result<ShardedIndex, IndexError> {
    map_sharded_from(Arc::new(Mmap::open(path)?))
}

/// [`map_index`] over an existing mapping (tests and benches map once
/// and reuse).
pub fn map_index_from(map: Arc<Mmap>) -> Result<InvertedIndex, IndexError> {
    let mut r = Reader::new(map.as_slice());
    let magic = r.u64("magic")?;
    match magic {
        io::MAGIC => map_checksummed(&map, r, true, true),
        io::MAGIC_V3 => map_checksummed(&map, r, false, true),
        io::MAGIC_V2 => map_checksummed(&map, r, false, false),
        io::MAGIC_V1 => map_v1(&map, r),
        found => Err(IndexError::UnsupportedFormat { found }),
    }
}

/// [`map_sharded`] over an existing mapping.
pub fn map_sharded_from(map: Arc<Mmap>) -> Result<ShardedIndex, IndexError> {
    let mut r = Reader::new(map.as_slice());
    let magic = r.u64("magic")?;
    if magic != io::MAGIC_SHARD && magic != io::MAGIC_SHARD_V2 && magic != io::MAGIC_SHARD_V3 {
        return Err(IndexError::UnsupportedFormat { found: magic });
    }
    let header = io::read_shard_header(&mut r, magic)?;
    let with_codec = magic == io::MAGIC_SHARD_V3;

    let mut shards = Vec::with_capacity(header.num_shards.min(r.remaining()));
    for s in 0..header.num_shards {
        let body_start = r.pos;
        let body = read_mapped_body(&map, &mut r, with_codec, true)?;
        if let Some(lens) = &header.body_lens {
            if (r.pos - body_start) as u64 != lens[s] {
                return Err(IndexError::CorruptIndex { context: "shard body length mismatch" });
            }
        }
        if body.names.len() != header.idf_bars.len() {
            return Err(IndexError::CorruptIndex { context: "shard dictionaries disagree" });
        }
        // Global statistics from the manifest header: the same idf̄/avgdl
        // every shard of the heap path gets, so scores (and bounds) are
        // bit-identical across sources.
        let terms: Vec<TermInfo> = body
            .names
            .iter()
            .zip(&body.lists)
            .zip(&header.idf_bars)
            .map(|((name, list), &idf_bar)| TermInfo {
                term: name.clone(),
                df: list.num_postings(),
                idf_bar,
            })
            .collect();
        let bounds = recompute_bounds(&body, &terms, header.avgdl)?;
        let source = IndexSource::Mapped {
            map: map.clone(),
            span_start: body_start,
            span_len: r.pos - body_start,
        };
        shards.push(InvertedIndex::from_stored_parts(
            terms,
            body.lists,
            bounds,
            body.doc_lens,
            header.avgdl,
            body.params,
            body.partitioner,
            body.codec,
            source,
        )?);
    }
    expect_footer(&r)?;
    ShardedIndex::from_shards_prevalidated(shards, header.n_docs, header.parent_partitioner)
}

/// The structurally-parsed (never decoded) counterpart of
/// `io::read_checksummed_body`: header and doc table eagerly CRC-checked,
/// each term record framed and structurally validated with its payload
/// left in the mapping and its CRC deferred to a [`LazyCrc`].
struct MappedBody {
    params: crate::score::Bm25Params,
    partitioner: crate::partition::Partitioner,
    codec: CodecId,
    doc_lens: Vec<u32>,
    names: Vec<String>,
    lists: Vec<EncodedList>,
}

fn read_mapped_body(
    map: &Arc<Mmap>,
    r: &mut Reader<'_>,
    with_codec: bool,
    with_crc: bool,
) -> Result<MappedBody, IndexError> {
    let header_start = r.pos;
    let k1 = r.f64("header")?;
    let b = r.f64("header")?;
    let params = crate::score::Bm25Params { k1, b };
    let part_kind = r.u8("header")?;
    let part_arg = r.u32("header")? as usize;
    let codec_raw = if with_codec { Some(r.u8("header")?) } else { None };
    let n_docs = r.u64("header")? as usize;
    let n_terms = r.u64("header")? as usize;
    if with_crc {
        r.verify_section(header_start, "header", "header checksum")?;
    }
    let partitioner = io::read_partitioner(part_kind, part_arg)?;
    let codec = match codec_raw {
        Some(raw) => CodecId::from_u8(raw)?,
        None => CodecId::BitPack,
    };

    let doc_start = r.pos;
    let doc_bytes = n_docs
        .checked_mul(4)
        .ok_or(IndexError::CorruptIndex { context: "doc length table" })?;
    let raw = r.take(doc_bytes, "doc length table")?;
    let doc_lens: Vec<u32> =
        raw.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
    if with_crc {
        r.verify_section(doc_start, "doc length table", "doc length checksum")?;
    }

    let mut names = Vec::with_capacity(n_terms.min(r.remaining()));
    let mut lists = Vec::with_capacity(n_terms.min(r.remaining()));
    for _ in 0..n_terms {
        let (name, list) = read_mapped_record(map, r, codec, with_crc)?;
        names.push(name);
        lists.push(list);
    }
    Ok(MappedBody { params, partitioner, codec, doc_lens, names, lists })
}

/// Parses one term record without decoding or hashing its payload. The
/// frame (name, counts, metadata words, skip values, payload length) is
/// bounds-checked and the assembled list passes [`EncodedList::validate`]
/// before it's returned; the record CRC (when the format has one) is
/// captured into a [`LazyCrc`] for first-touch verification.
fn read_mapped_record(
    map: &Arc<Mmap>,
    r: &mut Reader<'_>,
    codec: CodecId,
    with_crc: bool,
) -> Result<(String, EncodedList), IndexError> {
    let context = "term record";
    let record_start = r.pos;
    let name_len = r.u32(context)? as usize;
    let name = std::str::from_utf8(r.take(name_len, context)?)
        .map_err(|_| IndexError::CorruptIndex { context: "term name utf-8" })?
        .to_owned();

    let num_postings = r.u64(context)?;
    let num_blocks = r.u64(context)? as usize;
    let table_bytes = num_blocks
        .checked_mul(12)
        .ok_or(IndexError::CorruptIndex { context: "block tables" })?;
    let raw = r.take(table_bytes, context)?;
    let (meta_raw, skip_raw) = raw.split_at(num_blocks * 8);
    let metas: Vec<BlockMeta> = meta_raw
        .chunks_exact(8)
        .map(|c| {
            BlockMeta::unpack(u64::from_le_bytes([
                c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
            ]))
        })
        .collect();
    let skips: Vec<u32> = skip_raw
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let payload_len = r.u64(context)? as usize;
    let payload_off = r.pos;
    // Bounds-check the payload span without reading a byte of it.
    let _ = r.take(payload_len, context)?;
    let record_len = r.pos - record_start;

    let lazy = if with_crc {
        let expected = r.u32("term record checksum")?;
        Some(Arc::new(LazyCrc::new(map.clone(), record_start, record_len, expected)))
    } else {
        None
    };
    let payload = PayloadBuf::Mapped { map: map.clone(), offset: payload_off, len: payload_len };
    let list = EncodedList::from_stored_parts(metas, skips, payload, num_postings, codec, lazy)?;
    Ok((name, list))
}

/// Requires the remaining bytes to be exactly the 4-byte footer CRC —
/// which is *not* hashed (see the module docs: the footer covers every
/// byte of the file, and faulting in all payload pages at open would
/// forfeit the mapping).
fn expect_footer(r: &Reader<'_>) -> Result<(), IndexError> {
    if r.remaining() != 4 {
        return Err(IndexError::CorruptIndex { context: "trailing bytes" });
    }
    Ok(())
}

/// Recomputes score bounds from the mapped payloads — the open-time cost
/// formats without a stored bounds section pay (v1/v2 plain files, every
/// manifest shard body). Decoding goes through the same lazily-verified
/// path queries use, so record CRCs are checked as a side effect.
fn recompute_bounds(
    body: &MappedBody,
    terms: &[TermInfo],
    avgdl: f64,
) -> Result<Vec<ListBounds>, IndexError> {
    let dl_bars: Vec<Fixed> = body
        .doc_lens
        .iter()
        .map(|&l| Fixed::from_f64(body.params.dl_bar(l, avgdl)))
        .collect();
    body.lists
        .iter()
        .zip(terms)
        .map(|(list, info)| ListBounds::recompute(list, info.idf_bar, &dl_bars))
        .collect()
}

/// Shared tail of the checksummed plain formats (v2/v3/v4): body, then
/// (for v3/v4) the stored bounds section, then the footer frame.
fn map_checksummed(
    map: &Arc<Mmap>,
    mut r: Reader<'_>,
    with_codec: bool,
    has_bounds: bool,
) -> Result<InvertedIndex, IndexError> {
    let body = read_mapped_body(map, &mut r, with_codec, true)?;
    let n_docs = body.doc_lens.len() as u64;
    let avgdl = if body.doc_lens.is_empty() {
        1.0
    } else {
        body.doc_lens.iter().map(|&l| f64::from(l)).sum::<f64>() / n_docs as f64
    };
    let terms: Vec<TermInfo> = body
        .names
        .iter()
        .zip(&body.lists)
        .map(|(name, list)| {
            let df = list.num_postings();
            TermInfo {
                term: name.clone(),
                df,
                idf_bar: Fixed::from_f64(body.params.idf_bar(n_docs, df)),
            }
        })
        .collect();

    let bounds = if has_bounds {
        // Stored bounds: eagerly CRC-verified and structurally
        // cross-checked against each list, then trusted (no recompute
        // oracle — the zero-copy trade documented in the module docs).
        let bounds_start = r.pos;
        let mut stored: Vec<ListBounds> = Vec::with_capacity(body.lists.len());
        for _ in 0..body.lists.len() {
            let num_blocks = r.u64("score bounds")? as usize;
            let entry_bytes = num_blocks
                .checked_mul(8)
                .ok_or(IndexError::CorruptIndex { context: "score bounds" })?;
            let raw = r.take(entry_bytes, "score bounds")?;
            let mut ubs = Vec::with_capacity(num_blocks);
            let mut max_tfs = Vec::with_capacity(num_blocks);
            for c in raw.chunks_exact(8) {
                ubs.push(Fixed::from_raw(u32::from_le_bytes([c[0], c[1], c[2], c[3]])));
                max_tfs.push(u32::from_le_bytes([c[4], c[5], c[6], c[7]]));
            }
            stored.push(ListBounds::from_raw_parts(ubs, max_tfs));
        }
        r.verify_section(bounds_start, "score bounds", "score bounds checksum")?;
        for (bounds, list) in stored.iter().zip(&body.lists) {
            bounds.validate_against(list)?;
        }
        stored
    } else {
        recompute_bounds(&body, &terms, avgdl)?
    };
    expect_footer(&r)?;

    let source = IndexSource::Mapped {
        map: map.clone(),
        span_start: 0,
        span_len: map.len(),
    };
    InvertedIndex::from_stored_parts(
        terms,
        body.lists,
        bounds,
        body.doc_lens,
        avgdl,
        body.params,
        body.partitioner,
        body.codec,
        source,
    )
}

/// The legacy v1 layout: no checksums anywhere, term count after the doc
/// table, no bounds section, no footer. Mapped v1 loads are best-effort
/// by design — structural validation plus the bounds recompute are the
/// only corruption nets (matching the format's own guarantees).
fn map_v1(map: &Arc<Mmap>, mut r: Reader<'_>) -> Result<InvertedIndex, IndexError> {
    let k1 = r.f64("header")?;
    let b = r.f64("header")?;
    let params = crate::score::Bm25Params { k1, b };
    let part_kind = r.u8("header")?;
    let part_arg = r.u32("header")? as usize;
    let partitioner = io::read_partitioner(part_kind, part_arg)?;
    let n_docs = r.u64("header")? as usize;
    let doc_bytes = n_docs
        .checked_mul(4)
        .ok_or(IndexError::CorruptIndex { context: "doc length table" })?;
    let raw = r.take(doc_bytes, "doc length table")?;
    let doc_lens: Vec<u32> =
        raw.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();

    let n_terms = r.u64("term count")? as usize;
    let mut names = Vec::with_capacity(n_terms.min(r.remaining()));
    let mut lists = Vec::with_capacity(n_terms.min(r.remaining()));
    for _ in 0..n_terms {
        let (name, list) = read_mapped_record(map, &mut r, CodecId::BitPack, false)?;
        names.push(name);
        lists.push(list);
    }
    if r.remaining() != 0 {
        return Err(IndexError::CorruptIndex { context: "trailing bytes" });
    }

    let n = doc_lens.len() as u64;
    let avgdl = if doc_lens.is_empty() {
        1.0
    } else {
        doc_lens.iter().map(|&l| f64::from(l)).sum::<f64>() / n as f64
    };
    let terms: Vec<TermInfo> = names
        .iter()
        .zip(&lists)
        .map(|(name, list)| {
            let df = list.num_postings();
            TermInfo {
                term: name.clone(),
                df,
                idf_bar: Fixed::from_f64(params.idf_bar(n, df)),
            }
        })
        .collect();
    let body = MappedBody {
        params,
        partitioner,
        codec: CodecId::BitPack,
        doc_lens,
        names,
        lists,
    };
    let bounds = recompute_bounds(&body, &terms, avgdl)?;
    let source = IndexSource::Mapped {
        map: map.clone(),
        span_start: 0,
        span_len: map.len(),
    };
    InvertedIndex::from_stored_parts(
        terms,
        body.lists,
        bounds,
        body.doc_lens,
        avgdl,
        body.params,
        body.partitioner,
        body.codec,
        source,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuildOptions, IndexBuilder};
    use crate::partition::Partitioner;

    fn sample_index(codec: CodecId) -> InvertedIndex {
        let mut b = IndexBuilder::new(BuildOptions {
            partitioner: Partitioner::fixed(4),
            codec,
            ..Default::default()
        });
        b.add_document("the quick brown fox jumps over the lazy dog");
        b.add_document("pack my box with five dozen liquor jugs");
        b.add_document("the five boxing wizards jump quickly");
        b.add_document("quick wizards pack the box");
        for i in 0..60 {
            b.add_document(&format!("fox pack filler{} quick dog", i % 7));
        }
        b.build()
    }

    fn write_tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("iiu-storage-{}-{name}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn mapped_v4_equals_heap_deserialize() {
        for codec in CodecId::ALL {
            let idx = sample_index(codec);
            let bytes = io::serialize(&idx).unwrap();
            let path = write_tmp(&format!("v4-{codec}"), &bytes);
            let mapped = map_index(&path).unwrap();
            assert_eq!(mapped, idx, "{codec}");
            assert!(mapped.source().is_mapped());
            assert_eq!(mapped.source().mapped_bytes(), bytes.len() as u64);
            for id in 0..mapped.num_terms() as u32 {
                assert!(mapped.encoded_list(id).is_mapped(), "{codec} list {id}");
                mapped.verify_term(id).unwrap();
            }
            // The deep oracle accepts the mapped assembly.
            mapped.validate().unwrap();
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn mapped_sharded_equals_heap_deserialize() {
        let idx = sample_index(CodecId::BitPack);
        let sharded = ShardedIndex::split(&idx, 3).unwrap();
        let bytes = io::serialize_sharded(&sharded).unwrap();
        let path = write_tmp("sharded", &bytes);
        let mapped = map_sharded(&path).unwrap();
        let heap = io::deserialize_sharded(&bytes).unwrap();
        assert_eq!(mapped, heap);
        for (s, shard) in mapped.shards().iter().enumerate() {
            assert!(shard.source().is_mapped(), "shard {s}");
            assert!(shard.source().mapped_bytes() > 0, "shard {s}");
        }
        // Shard spans are disjoint and cover less than the whole file.
        let total: u64 = mapped.shards().iter().map(|s| s.source().mapped_bytes()).sum();
        assert!(total < bytes.len() as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_dispatches_on_magic() {
        let idx = sample_index(CodecId::BitPack);
        let plain = write_tmp("dispatch-plain", &io::serialize(&idx).unwrap());
        let sharded = ShardedIndex::split(&idx, 2).unwrap();
        let manifest =
            write_tmp("dispatch-shard", &io::serialize_sharded(&sharded).unwrap());
        assert!(matches!(open(&plain).unwrap(), MappedIndex::Plain(_)));
        assert!(matches!(open(&manifest).unwrap(), MappedIndex::Sharded(_)));
        std::fs::remove_file(&plain).ok();
        std::fs::remove_file(&manifest).ok();
    }

    #[test]
    fn unknown_magic_is_unsupported_format() {
        let path = write_tmp("badmagic", &[0xFFu8; 64]);
        assert!(matches!(
            map_index(&path),
            Err(IndexError::UnsupportedFormat { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn payload_corruption_is_lazy_and_typed() {
        let idx = sample_index(CodecId::BitPack);
        let mut bytes = io::serialize(&idx).unwrap();
        // Find one list's payload bytes in the file by searching for them
        // (the sample corpus is small enough for this to be unambiguous
        // per-term is not needed — flip a byte we know is payload by
        // using the largest list's payload).
        let id = (0..idx.num_terms() as u32)
            .max_by_key(|&id| idx.encoded_list(id).payload().len())
            .unwrap();
        let needle = idx.encoded_list(id).payload();
        assert!(needle.len() >= 4, "need a non-trivial payload to corrupt");
        let pos = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("payload bytes must appear in the serialized file");
        bytes[pos] ^= 0x40;

        let path = write_tmp("lazy-corrupt", &bytes);
        // Open succeeds: the flipped byte lives in a lazily-verified
        // payload section.
        let mapped = map_index(&path).unwrap();
        // First touch of the corrupted term reports the checksum mismatch.
        let err = mapped.verify_term(id).unwrap_err();
        assert!(matches!(err, IndexError::ChecksumMismatch { section: "term record", .. }),
            "{err:?}");
        // Typed error from the decode path too, and find degrades to None.
        let mut out = Vec::new();
        assert!(mapped.encoded_list(id).try_decode_block_into(0, &mut out).is_err());
        assert_eq!(mapped.encoded_list(id).find(0), mapped.encoded_list(id).find(0));
        // Other terms stay healthy.
        for other in 0..mapped.num_terms() as u32 {
            if other != id {
                mapped.verify_term(other).unwrap();
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_v2_and_sharded_recompute_bounds() {
        // A v2 file has no bounds section: the mapped load recomputes and
        // must agree with the heap load exactly.
        let idx = sample_index(CodecId::BitPack);
        let v4 = io::serialize(&idx).unwrap();
        let heap = io::deserialize(&v4).unwrap();
        let path = write_tmp("v4-bounds", &v4);
        let mapped = map_index(&path).unwrap();
        assert_eq!(mapped.bounds().len(), heap.bounds().len());
        for id in 0..heap.num_terms() as u32 {
            assert_eq!(mapped.list_bounds(id), heap.list_bounds(id), "term {id}");
        }
        std::fs::remove_file(&path).ok();
    }
}
