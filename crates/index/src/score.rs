//! BM25 scoring with the hardware's precomputed sub-expressions (paper
//! §2.2, §4.3 "Scoring Unit").
//!
//! IIU strength-reduces BM25 by precomputing, at index time,
//!
//! * per term: `idf̄(q) = idf(q) · (k₁ + 1)`, and
//! * per document: `dl̄(d) = k₁ · (1 − b + b · |d| / avgdl)`,
//!
//! so the scoring unit only computes `s̄ = 1 / (tf + dl̄(d))` with a
//! pipelined fixed-point divider and then `s = idf̄ · s̄ · tf`. This module
//! provides both a double-precision reference and the Q16.16 fixed-point
//! path the hardware uses; tests bound their divergence.
//!
//! The IDF follows Lucene's BM25 similarity,
//! `idf = ln(1 + (N − n + 0.5) / (n + 0.5))`, which is the paper's formula
//! guarded against negative values for terms occurring in more than half
//! the corpus (Lucene is the paper's baseline, so its IDF is the one the
//! comparison actually ran against).

use std::fmt;

/// BM25 free parameters (`k₁` limits tf scaling, `b` controls length
/// normalization).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation constant; Lucene default 1.2.
    pub k1: f64,
    /// Length-normalization strength; Lucene default 0.75.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

impl Bm25Params {
    /// Inverse document frequency of a term occurring in `df` of `n_docs`
    /// documents (Lucene-style, always non-negative).
    pub fn idf(&self, n_docs: u64, df: u64) -> f64 {
        let n = n_docs as f64;
        let d = df as f64;
        (1.0 + (n - d + 0.5) / (d + 0.5)).ln()
    }

    /// The precomputed per-term constant `idf̄ = idf · (k₁ + 1)`.
    pub fn idf_bar(&self, n_docs: u64, df: u64) -> f64 {
        self.idf(n_docs, df) * (self.k1 + 1.0)
    }

    /// The precomputed per-document constant
    /// `dl̄(d) = k₁ · (1 − b + b · |d| / avgdl)`.
    pub fn dl_bar(&self, doc_len: u32, avgdl: f64) -> f64 {
        self.k1 * (1.0 - self.b + self.b * f64::from(doc_len) / avgdl)
    }

    /// Reference (double-precision) per-term score contribution:
    /// `idf̄ · tf / (tf + dl̄)`.
    pub fn term_score(&self, idf_bar: f64, dl_bar: f64, tf: u32) -> f64 {
        let tf = f64::from(tf);
        idf_bar * tf / (tf + dl_bar)
    }
}

/// An unsigned Q16.16 fixed-point number, the arithmetic format of the
/// scoring unit's datapath.
///
/// # Example
///
/// ```
/// use iiu_index::Fixed;
/// let x = Fixed::from_f64(1.5);
/// assert_eq!(x.raw(), 3 << 15);
/// assert!((x.to_f64() - 1.5).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fixed(u32);

impl Fixed {
    /// Number of fractional bits.
    pub const FRAC_BITS: u32 = 16;
    /// The value 0.
    pub const ZERO: Fixed = Fixed(0);
    /// The value 1.0.
    pub const ONE: Fixed = Fixed(1 << Self::FRAC_BITS);

    /// Converts from `f64`, saturating at the representable range and
    /// flooring negatives to zero (the SU datapath is unsigned).
    pub fn from_f64(v: f64) -> Self {
        if v <= 0.0 {
            return Fixed(0);
        }
        let scaled = v * f64::from(1u32 << Self::FRAC_BITS);
        if scaled >= f64::from(u32::MAX) {
            Fixed(u32::MAX)
        } else {
            Fixed(scaled.round() as u32)
        }
    }

    /// Converts to `f64`.
    pub fn to_f64(self) -> f64 {
        f64::from(self.0) / f64::from(1u32 << Self::FRAC_BITS)
    }

    /// Raw Q16.16 bits.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Constructs from raw Q16.16 bits.
    pub fn from_raw(raw: u32) -> Self {
        Fixed(raw)
    }

    /// Saturating addition (used when summing per-term scores).
    pub fn saturating_add(self, other: Fixed) -> Fixed {
        Fixed(self.0.saturating_add(other.0))
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.to_f64())
    }
}

/// The scoring-unit datapath in software: one adder, one fixed-point
/// reciprocal, two multiplies (paper §4.3).
///
/// Computes `idf̄ · tf / (tf + dl̄)` entirely in integer arithmetic:
///
/// 1. `denom = (tf << 16) + dl̄`  (Q16.16)
/// 2. `s̄ = 2^48 / denom`          (Q0.32 reciprocal, the pipelined divider)
/// 3. `s = ((s̄ · tf) · idf̄) >> 32` (Q16.16 result)
///
/// Returns zero when `tf` is zero.
pub fn term_score_fixed(idf_bar: Fixed, dl_bar: Fixed, tf: u32) -> Fixed {
    if tf == 0 {
        return Fixed::ZERO;
    }
    let denom: u64 = (u64::from(tf) << Fixed::FRAC_BITS) + u64::from(dl_bar.raw());
    // denom >= tf<<16 >= 1<<16, so the reciprocal fits in 32 bits:
    // 2^48 / 2^16 = 2^32 at most, and tf >= 1 keeps it strictly below.
    let recip_q32: u64 = (1u64 << 48) / denom;
    let s_tf_q32: u64 = recip_q32 * u64::from(tf); // <= 2^32 (since tf/denom <= 1)
    let score_q16: u64 = (s_tf_q32 * u64::from(idf_bar.raw())) >> 32;
    Fixed(score_q16.min(u64::from(u32::MAX)) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn idf_decreases_with_document_frequency() {
        let p = Bm25Params::default();
        let rare = p.idf(1_000_000, 10);
        let common = p.idf(1_000_000, 500_000);
        assert!(rare > common);
        assert!(common > 0.0, "Lucene-style IDF stays positive");
    }

    #[test]
    fn idf_positive_even_for_ubiquitous_terms() {
        let p = Bm25Params::default();
        assert!(p.idf(100, 100) > 0.0);
    }

    #[test]
    fn dl_bar_grows_with_doc_length() {
        let p = Bm25Params::default();
        assert!(p.dl_bar(1000, 100.0) > p.dl_bar(10, 100.0));
        // At |d| = avgdl, dl_bar = k1 exactly.
        assert!((p.dl_bar(100, 100.0) - p.k1).abs() < 1e-12);
    }

    #[test]
    fn term_score_saturates_in_tf() {
        let p = Bm25Params::default();
        let idf_bar = p.idf_bar(1_000_000, 100);
        let dl_bar = p.dl_bar(100, 120.0);
        let s1 = p.term_score(idf_bar, dl_bar, 1);
        let s10 = p.term_score(idf_bar, dl_bar, 10);
        let s1000 = p.term_score(idf_bar, dl_bar, 1000);
        assert!(s1 < s10 && s10 < s1000);
        // Saturation: the score approaches idf_bar asymptotically.
        assert!(s1000 < idf_bar);
        assert!(idf_bar - s1000 < idf_bar * 0.01);
    }

    #[test]
    fn fixed_constants() {
        assert_eq!(Fixed::ZERO.to_f64(), 0.0);
        assert_eq!(Fixed::ONE.to_f64(), 1.0);
        assert_eq!(Fixed::from_f64(-3.0), Fixed::ZERO);
        assert_eq!(Fixed::from_f64(1e12), Fixed::from_raw(u32::MAX));
    }

    #[test]
    fn fixed_score_matches_reference() {
        let p = Bm25Params::default();
        for (n_docs, df, doc_len, tf) in [
            (1_000_000u64, 100u64, 80u32, 1u32),
            (1_000_000, 100, 80, 7),
            (1_000_000, 500_000, 300, 3),
            (30_000_000, 12_000, 1000, 40),
            (100, 1, 5, 1),
        ] {
            let avgdl = 120.0;
            let idf_bar = p.idf_bar(n_docs, df);
            let dl_bar = p.dl_bar(doc_len, avgdl);
            let reference = p.term_score(idf_bar, dl_bar, tf);
            let fixed =
                term_score_fixed(Fixed::from_f64(idf_bar), Fixed::from_f64(dl_bar), tf);
            let err = (fixed.to_f64() - reference).abs();
            assert!(
                err < 1e-3 * reference.max(1.0),
                "fixed={} ref={reference} err={err}",
                fixed.to_f64()
            );
        }
    }

    #[test]
    fn fixed_score_zero_tf_is_zero() {
        assert_eq!(
            term_score_fixed(Fixed::from_f64(10.0), Fixed::from_f64(1.0), 0),
            Fixed::ZERO
        );
    }

    #[test]
    fn fixed_score_monotone_in_tf() {
        let idf_bar = Fixed::from_f64(8.0);
        let dl_bar = Fixed::from_f64(1.5);
        let mut prev = Fixed::ZERO;
        for tf in 1..100 {
            let s = term_score_fixed(idf_bar, dl_bar, tf);
            assert!(s >= prev, "score must not decrease with tf");
            prev = s;
        }
    }

    #[test]
    fn saturating_add_caps() {
        let big = Fixed::from_raw(u32::MAX - 5);
        assert_eq!(big.saturating_add(Fixed::from_raw(100)), Fixed::from_raw(u32::MAX));
    }

    proptest! {
        #[test]
        fn prop_fixed_close_to_reference(
            df in 1u64..1_000_000,
            doc_len in 1u32..5000,
            tf in 1u32..10_000,
        ) {
            let p = Bm25Params::default();
            let n_docs = 1_000_000u64;
            let avgdl = 250.0;
            let idf_bar = p.idf_bar(n_docs, df.min(n_docs));
            let dl_bar = p.dl_bar(doc_len, avgdl);
            let reference = p.term_score(idf_bar, dl_bar, tf);
            let fixed = term_score_fixed(
                Fixed::from_f64(idf_bar),
                Fixed::from_f64(dl_bar),
                tf,
            ).to_f64();
            // Relative error bound dominated by the Q16.16 quantization of
            // idf_bar and dl_bar.
            prop_assert!((fixed - reference).abs() < 2e-3 * reference.max(0.5));
        }

        #[test]
        fn prop_fixed_roundtrip(v in 0.0f64..65_000.0) {
            let f = Fixed::from_f64(v);
            prop_assert!((f.to_f64() - v).abs() <= 1.0 / 65536.0);
        }
    }
}
