//! Error types for index construction and serialization.

use std::error::Error;
use std::fmt;

/// Errors produced while building, encoding or (de)serializing an index.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IndexError {
    /// A partition's block lengths do not match the posting list.
    BadPartition {
        /// Number of postings in the list being encoded.
        list_len: usize,
        /// Sum of the proposed block lengths.
        partition_sum: usize,
    },
    /// A d-gap or term frequency needs 32 or more bits; the 5-bit metadata
    /// width fields only reach 31.
    ValueTooWide {
        /// Required docID d-gap bitwidth.
        dn_bits: u8,
        /// Required term-frequency bitwidth.
        tf_bits: u8,
    },
    /// A compressed list outgrew the 43-bit payload offset field.
    ListTooLarge {
        /// Offending payload size in bytes.
        bytes: u64,
    },
    /// The serialized index bytes are malformed.
    CorruptIndex {
        /// What was being parsed when the failure occurred.
        context: &'static str,
    },
    /// A section checksum did not match its contents (format v2).
    ChecksumMismatch {
        /// Which section failed (e.g. `"header"`, `"doc length table"`,
        /// `"term record"`, `"footer"`).
        section: &'static str,
        /// The checksum stored in the file.
        expected: u32,
        /// The checksum computed over the actual bytes.
        found: u32,
    },
    /// The serialized index has an unsupported magic number or version.
    UnsupportedFormat {
        /// The magic/version actually found.
        found: u64,
    },
    /// A v4 header (or shard manifest) names a block codec this build
    /// does not implement. Distinct from [`IndexError::CorruptIndex`]
    /// because the byte is CRC-valid — the file is from a newer build,
    /// not damaged.
    UnknownCodec {
        /// The codec id byte actually found.
        id: u8,
    },
    /// A term was queried that the index does not contain.
    UnknownTerm {
        /// The missing term.
        term: String,
    },
    /// A phrase query was issued but the index has no positional sidecar
    /// (build with [`crate::BuildOptions::track_positions`]).
    PositionsUnavailable,
    /// A filesystem operation on the write path failed (WAL append/fsync,
    /// segment seal, recovery scan). The message is the stringified
    /// `std::io::Error` (which is neither `Clone` nor `Eq`).
    Io {
        /// What was being done when the failure occurred.
        context: &'static str,
        /// The underlying I/O error, stringified.
        message: String,
    },
    /// The write-ahead log contains a record that is provably corrupt —
    /// not merely torn at the tail (torn tails are truncated and recovered
    /// from, never reported as errors).
    CorruptWal {
        /// What check failed (e.g. `"record checksum"`, `"sequence gap"`).
        context: &'static str,
        /// Byte offset of the offending record's frame in the log.
        offset: u64,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::BadPartition { list_len, partition_sum } => write!(
                f,
                "partition covers {partition_sum} postings but the list has {list_len}"
            ),
            IndexError::ValueTooWide { dn_bits, tf_bits } => write!(
                f,
                "value too wide for 5-bit width fields (needs dn={dn_bits}, tf={tf_bits} bits)"
            ),
            IndexError::ListTooLarge { bytes } => {
                write!(f, "compressed list of {bytes} bytes exceeds the 43-bit offset field")
            }
            IndexError::CorruptIndex { context } => {
                write!(f, "corrupt serialized index while reading {context}")
            }
            IndexError::ChecksumMismatch { section, expected, found } => write!(
                f,
                "checksum mismatch in {section}: stored {expected:#010x}, computed {found:#010x}"
            ),
            IndexError::UnsupportedFormat { found } => {
                write!(f, "unsupported index format (magic/version {found:#x})")
            }
            IndexError::UnknownCodec { id } => {
                write!(f, "unknown block codec id {id} (index from a newer build?)")
            }
            IndexError::UnknownTerm { term } => write!(f, "unknown term {term:?}"),
            IndexError::PositionsUnavailable => {
                write!(f, "phrase queries need an index built with position tracking")
            }
            IndexError::Io { context, message } => {
                write!(f, "i/o failure while {context}: {message}")
            }
            IndexError::CorruptWal { context, offset } => {
                write!(f, "corrupt WAL record at byte offset {offset}: {context}")
            }
        }
    }
}

impl Error for IndexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = IndexError::BadPartition { list_len: 10, partition_sum: 9 };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains('9'));
        let e = IndexError::UnknownTerm { term: "zebra".into() };
        assert!(e.to_string().contains("zebra"));
        let e = IndexError::ChecksumMismatch {
            section: "doc length table",
            expected: 0xDEAD_BEEF,
            found: 0x0BAD_F00D,
        };
        let s = e.to_string();
        assert!(s.contains("doc length table"));
        assert!(s.contains("0xdeadbeef") && s.contains("0x0badf00d"), "{s}");
        let e =
            IndexError::Io { context: "appending to the WAL", message: "disk full".into() };
        let s = e.to_string();
        assert!(s.contains("appending to the WAL") && s.contains("disk full"), "{s}");
        let e = IndexError::CorruptWal { context: "record checksum", offset: 424_242 };
        let s = e.to_string();
        assert!(s.contains("424242") && s.contains("record checksum"), "{s}");
    }

    #[test]
    fn error_is_send_sync() {
        // The full bound callers need to box and send across threads.
        fn assert_error<T: Error + Send + Sync + 'static>() {}
        assert_error::<IndexError>();
    }
}
