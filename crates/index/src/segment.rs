//! Sealed on-disk segments for the incremental index.
//!
//! A segment is a plain single-shard index file (see [`crate::io`])
//! holding a contiguous run of global documents. The file name carries
//! the run: `seg-{start:012}-{count:012}.iiu` covers global doc ids
//! `[start, start + count)`. Inside the file doc ids are segment-local;
//! readers remap by adding `start`.
//!
//! Sealing is atomic: the bytes are written to a `.tmp` sibling, fsynced,
//! renamed into place, and the directory is fsynced. A crash leaves
//! either no segment (plus a `.tmp` that recovery deletes) or a complete,
//! checksummed one — never a half segment under the real name.
//!
//! Merging replaces several contiguous segments with one covering their
//! union. The merged file lands first (same atomic protocol) and only
//! then are the inputs unlinked, so a crash between those steps leaves
//! overlapping files; recovery resolves this by dropping any segment
//! whose range is fully contained in another's ("subsumption") before
//! validating that the survivors tile `[0, total)` exactly.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::codec::CodecId;
use crate::error::IndexError;
use crate::index::InvertedIndex;
use crate::io;
use crate::partition::Partitioner;
use crate::posting::{Posting, PostingList};
use crate::score::Bm25Params;
use crate::wal::sync_dir;

/// Suffix used for in-flight segment writes; anything with this suffix is
/// deleted during recovery.
pub const TMP_SUFFIX: &str = ".tmp";

fn io_err(context: &'static str, e: std::io::Error) -> IndexError {
    IndexError::Io { context, message: e.to_string() }
}

/// Identity of a sealed segment: which global documents it holds and the
/// file it lives in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// First global doc id in the segment.
    pub start: u64,
    /// Number of documents in the segment.
    pub count: u64,
    /// File name within the index directory.
    pub file_name: String,
}

impl SegmentMeta {
    /// One past the last global doc id in the segment.
    pub fn end(&self) -> u64 {
        self.start + self.count
    }
}

/// A segment loaded into memory: its metadata plus the decoded index.
#[derive(Debug)]
pub struct LoadedSegment {
    /// Range and file identity.
    pub meta: SegmentMeta,
    /// The segment's index over segment-local doc ids.
    pub index: InvertedIndex,
}

/// Canonical file name for a segment covering `[start, start + count)`.
pub fn segment_file_name(start: u64, count: u64) -> String {
    format!("seg-{start:012}-{count:012}.iiu")
}

/// Parses a segment file name back into `(start, count)`. Returns `None`
/// for names that are not segment files at all; callers treat a
/// `seg-`-prefixed name that fails to parse as corruption.
pub fn parse_segment_name(name: &str) -> Option<(u64, u64)> {
    let body = name.strip_prefix("seg-")?.strip_suffix(".iiu")?;
    let (start, count) = body.split_once('-')?;
    if start.len() != 12 || count.len() != 12 {
        return None;
    }
    if !start.bytes().all(|b| b.is_ascii_digit()) || !count.bytes().all(|b| b.is_ascii_digit())
    {
        return None;
    }
    Some((start.parse().ok()?, count.parse().ok()?))
}

/// Writes `bytes` to `dir/file_name` atomically: tmp file, fsync, rename,
/// directory fsync.
pub(crate) fn write_atomic(
    dir: &Path,
    file_name: &str,
    bytes: &[u8],
) -> Result<PathBuf, IndexError> {
    let tmp = dir.join(format!("{file_name}{TMP_SUFFIX}"));
    let fin = dir.join(file_name);
    {
        let mut f =
            fs::File::create(&tmp).map_err(|e| io_err("creating a segment tmp file", e))?;
        use std::io::Write;
        f.write_all(bytes).map_err(|e| io_err("writing a segment tmp file", e))?;
        f.sync_all().map_err(|e| io_err("fsyncing a segment tmp file", e))?;
    }
    fs::rename(&tmp, &fin).map_err(|e| io_err("renaming a segment into place", e))?;
    sync_dir(dir)?;
    Ok(fin)
}

/// Seals `lists`/`doc_lens` (local ids, lexicographic term order) into a
/// new bit-packed segment starting at global doc `start`. See
/// [`seal_segment_with`] for codec selection.
pub fn seal_segment(
    dir: &Path,
    start: u64,
    lists: Vec<(String, PostingList)>,
    doc_lens: Vec<u32>,
    partitioner: Partitioner,
    params: Bm25Params,
) -> Result<LoadedSegment, IndexError> {
    seal_segment_with(dir, start, lists, doc_lens, partitioner, params, CodecId::BitPack)
}

/// Seals `lists`/`doc_lens` (local ids, lexicographic term order) into a
/// new segment starting at global doc `start`, encoded with `codec`. The
/// partitioner runs fresh over the batch, so every sealed segment gets
/// its own compression-optimal block structure. Returns the loaded
/// segment.
#[allow(clippy::too_many_arguments)]
pub fn seal_segment_with(
    dir: &Path,
    start: u64,
    lists: Vec<(String, PostingList)>,
    doc_lens: Vec<u32>,
    partitioner: Partitioner,
    params: Bm25Params,
    codec: CodecId,
) -> Result<LoadedSegment, IndexError> {
    let count = doc_lens.len() as u64;
    let index = InvertedIndex::from_lists_codec(lists, doc_lens, partitioner, params, codec)?;
    let bytes = io::serialize(&index)?;
    let file_name = segment_file_name(start, count);
    write_atomic(dir, &file_name, &bytes)?;
    Ok(LoadedSegment { meta: SegmentMeta { start, count, file_name }, index })
}

/// Loads a sealed segment file, verifying that its contents agree with
/// the range its file name claims.
pub fn load_segment(dir: &Path, meta: &SegmentMeta) -> Result<LoadedSegment, IndexError> {
    let bytes = fs::read(dir.join(&meta.file_name))
        .map_err(|e| io_err("reading a segment file", e))?;
    let index = io::deserialize(&bytes)?;
    check_meta(&index, meta)?;
    Ok(LoadedSegment { meta: meta.clone(), index })
}

/// Like [`load_segment`], but memory-maps the file and serves posting
/// bytes straight out of the page cache ([`crate::storage`]): payload
/// CRCs defer to first touch instead of load time. Sealed segments are
/// immutable once renamed into place, which is exactly the contract the
/// mapped loader's safety argument needs.
pub fn load_segment_mmap(dir: &Path, meta: &SegmentMeta) -> Result<LoadedSegment, IndexError> {
    let index = crate::storage::map_index(&dir.join(&meta.file_name))?;
    check_meta(&index, meta)?;
    Ok(LoadedSegment { meta: meta.clone(), index })
}

fn check_meta(index: &InvertedIndex, meta: &SegmentMeta) -> Result<(), IndexError> {
    if index.num_docs() != meta.count {
        return Err(IndexError::CorruptIndex {
            context: "segment doc count disagrees with its file name",
        });
    }
    Ok(())
}

/// Merges contiguous loaded segments (ascending `start`) into one list
/// set over ids global-relative to the first segment's `start`, mirroring
/// [`crate::ShardedIndex::merge`]: decode every list, remap, concatenate,
/// and re-sort per term. Returns `(lists, doc_lens)` ready for
/// [`seal_segment`] at `segments[0].meta.start`.
pub fn merge_segment_lists(
    segments: &[&LoadedSegment],
) -> Result<(Vec<(String, PostingList)>, Vec<u32>), IndexError> {
    let Some(first) = segments.first() else {
        return Ok((Vec::new(), Vec::new()));
    };
    let base = first.meta.start;
    let mut doc_lens = Vec::new();
    let mut merged: BTreeMap<String, Vec<Posting>> = BTreeMap::new();
    let mut expect = base;
    for seg in segments {
        if seg.meta.start != expect {
            return Err(IndexError::CorruptIndex {
                context: "merging non-contiguous segments",
            });
        }
        expect = seg.meta.end();
        let offset = (seg.meta.start - base) as u32;
        doc_lens.extend_from_slice(seg.index.doc_lens());
        for info in seg.index.terms() {
            let list = seg.index.decode_term(&info.term)?;
            let out = merged.entry(info.term.clone()).or_default();
            out.extend(list.iter().map(|p| Posting::new(p.doc_id + offset, p.tf)));
        }
    }
    let lists = merged
        .into_iter()
        .map(|(term, mut postings)| {
            // Segments arrive in ascending start order so postings are
            // already sorted; keep the sort as a cheap invariant guard,
            // mirroring ShardedIndex::merge.
            postings.sort_unstable_by_key(|p| p.doc_id);
            (term, PostingList::from_sorted(postings))
        })
        .collect();
    Ok((lists, doc_lens))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_name_round_trips() {
        let name = segment_file_name(0, 1);
        assert_eq!(name, "seg-000000000000-000000000001.iiu");
        assert_eq!(parse_segment_name(&name), Some((0, 1)));
        let name = segment_file_name(987_654_321, 123_456);
        assert_eq!(parse_segment_name(&name), Some((987_654_321, 123_456)));
    }

    #[test]
    fn parse_rejects_malformed_names() {
        for bad in [
            "seg-000000000000-000000000001.iiu.tmp",
            "seg-00000000000-000000000001.iiu", // 11-digit start
            "seg-000000000000-00000000001.iiu", // 11-digit count
            "seg-0000000000000000000000001.iiu", // missing dash
            "seg-00000000000a-000000000001.iiu",
            "wal.log",
            "seg-.iiu",
            "seg-000000000000-000000000001.bin",
        ] {
            assert_eq!(parse_segment_name(bad), None, "{bad}");
        }
    }

    #[test]
    fn seal_load_round_trip_and_merge() {
        let dir = std::env::temp_dir().join(format!("iiu-seg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let part = Partitioner::dynamic(crate::partition::DEFAULT_MAX_SIZE);
        let params = Bm25Params::default();

        let mut a = PostingList::new();
        a.push(0, 2);
        a.push(1, 1);
        let s0 = seal_segment(&dir, 0, vec![("alpha".into(), a)], vec![5, 3], part, params)
            .unwrap();
        let mut b = PostingList::new();
        b.push(0, 4);
        let s1 =
            seal_segment(&dir, 2, vec![("alpha".into(), b)], vec![7], part, params).unwrap();

        let loaded = load_segment(&dir, &s0.meta).unwrap();
        assert_eq!(loaded.index.num_docs(), 2);
        assert!(!dir.join(format!("{}{TMP_SUFFIX}", s0.meta.file_name)).exists());

        let (lists, lens) = merge_segment_lists(&[&s0, &s1]).unwrap();
        assert_eq!(lens, vec![5, 3, 7]);
        assert_eq!(lists.len(), 1);
        assert_eq!(lists[0].1.doc_ids(), vec![0, 1, 2]);
        assert_eq!(lists[0].1.term_freqs(), vec![2, 1, 4]);

        // Merging non-contiguous segments is refused.
        let gap = merge_segment_lists(&[&s1]);
        assert!(gap.is_ok(), "single segment is trivially contiguous");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_detects_count_mismatch() {
        let dir = std::env::temp_dir().join(format!("iiu-seg-mis-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let part = Partitioner::dynamic(crate::partition::DEFAULT_MAX_SIZE);
        let mut a = PostingList::new();
        a.push(0, 2);
        let sealed = seal_segment(
            &dir,
            0,
            vec![("alpha".into(), a)],
            vec![5],
            part,
            Bm25Params::default(),
        )
        .unwrap();
        // Lie about the count in the metadata: the loader must notice.
        let lie = SegmentMeta { count: 9, ..sealed.meta.clone() };
        let err = load_segment(&dir, &lie).unwrap_err();
        assert!(matches!(err, IndexError::CorruptIndex { .. }), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
