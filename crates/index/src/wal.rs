//! Write-ahead log for crash-safe incremental indexing.
//!
//! Every acknowledged document is appended to the log and fsynced before
//! the caller sees success, so a crash at any instant loses at most the
//! unacknowledged tail. The on-disk layout is deliberately simple:
//!
//! ```text
//! magic  u64 LE                       // MAGIC_WAL, written once at create
//! record*:
//!   payload_len  u32 LE               // bytes of payload that follow the frame
//!   crc          u32 LE               // CRC32 over (seq LE ++ payload)
//!   seq          u64 LE               // global document sequence number
//!   payload      [u8; payload_len]    // encoded IngestDoc
//! ```
//!
//! Sequence numbers are the global document ids, so replay after a crash
//! can tell three situations apart without any extra bookkeeping:
//!
//! * `seq <  expected` — the document was already sealed into a segment
//!   (the crash happened between a seal and the WAL reset, or an append
//!   was duplicated); the record is skipped.
//! * `seq == expected` — the next acknowledged document; applied.
//! * `seq >  expected` — a gap, which the append protocol can never
//!   produce; reported as [`IndexError::CorruptWal`].
//!
//! Torn tails — a record whose frame or payload runs past end-of-file, or
//! whose *final* record fails its CRC — are the expected signature of a
//! crash mid-append and are truncated away silently (the bytes were never
//! acknowledged). A CRC failure on a non-final record cannot be produced
//! by a torn write and is reported as typed corruption instead.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

use crate::checksum::Crc32;
use crate::error::IndexError;

/// Magic number opening every WAL file (`b"IIUW"` + version 1).
pub const MAGIC_WAL: u64 = 0x4949_5557_0000_0001;

/// Bytes in the fixed per-record frame (`payload_len`, `crc`, `seq`).
const FRAME_BYTES: usize = 16;

/// Upper bound on a single record's payload; anything larger in a length
/// field is corruption, not a document.
const MAX_PAYLOAD: usize = 64 << 20;

/// Upper bound on a single term's byte length inside a record.
const MAX_TERM_BYTES: usize = 4096;

/// Upper bound on distinct terms per document.
const MAX_DOC_TERMS: usize = 1 << 22;

/// File name of the log inside an incremental index directory.
pub const WAL_FILE_NAME: &str = "wal.log";

fn io_err(context: &'static str, e: std::io::Error) -> IndexError {
    IndexError::Io { context, message: e.to_string() }
}

/// Fsync a directory so a just-created or just-renamed entry survives a
/// power loss (on Linux, directory metadata needs its own fsync).
pub(crate) fn sync_dir(dir: &Path) -> Result<(), IndexError> {
    let d = File::open(dir).map_err(|e| io_err("opening directory for fsync", e))?;
    d.sync_all().map_err(|e| io_err("fsyncing directory", e))
}

/// One document presented for ingestion: its length in tokens plus its
/// distinct `(term, tf)` pairs. Construction normalizes the term list
/// (sorted, duplicates merged, zero frequencies dropped) so downstream
/// posting-list building can rely on strict ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestDoc {
    len: u32,
    terms: Vec<(String, u32)>,
}

impl IngestDoc {
    /// Builds a document from a token-length and raw `(term, tf)` pairs.
    /// Pairs are sorted by term, duplicate terms have their frequencies
    /// summed (saturating), and zero-frequency pairs are dropped.
    pub fn new(len: u32, mut terms: Vec<(String, u32)>) -> Self {
        terms.retain(|(_, tf)| *tf > 0);
        terms.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        terms.dedup_by(|later, first| {
            if later.0 == first.0 {
                first.1 = first.1.saturating_add(later.1);
                true
            } else {
                false
            }
        });
        IngestDoc { len, terms }
    }

    /// Builds a document from a token stream: `len` is the token count and
    /// term frequencies are accumulated per distinct token.
    pub fn from_tokens<'a, I: IntoIterator<Item = &'a str>>(tokens: I) -> Self {
        let mut tf = std::collections::BTreeMap::<&str, u32>::new();
        let mut len = 0u32;
        for t in tokens {
            if t.is_empty() {
                continue;
            }
            len = len.saturating_add(1);
            *tf.entry(t).or_insert(0) += 1;
        }
        IngestDoc { len, terms: tf.into_iter().map(|(t, f)| (t.to_owned(), f)).collect() }
    }

    /// Token length of the document.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True when the document has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The normalized `(term, tf)` pairs, strictly sorted by term.
    pub fn terms(&self) -> &[(String, u32)] {
        &self.terms
    }

    /// Serialized payload: `doc_len u32 | n_terms u32 | (term_len u16 |
    /// term bytes | tf u32)*`, all little-endian.
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&(self.terms.len() as u32).to_le_bytes());
        for (term, tf) in &self.terms {
            out.extend_from_slice(&(term.len() as u16).to_le_bytes());
            out.extend_from_slice(term.as_bytes());
            out.extend_from_slice(&tf.to_le_bytes());
        }
    }

    /// Strict payload decoder: every structural violation is a hard error
    /// (the frame CRC already matched, so this is corruption or a writer
    /// bug, not a torn write).
    fn decode(payload: &[u8]) -> Result<IngestDoc, &'static str> {
        fn take<'a>(
            buf: &mut &'a [u8],
            n: usize,
            what: &'static str,
        ) -> Result<&'a [u8], &'static str> {
            if buf.len() < n {
                return Err(what);
            }
            let (head, rest) = buf.split_at(n);
            *buf = rest;
            Ok(head)
        }
        let mut buf = payload;
        let len = u32::from_le_bytes(
            take(&mut buf, 4, "payload shorter than doc_len field")?
                .try_into()
                .map_err(|_| "doc_len field")?,
        );
        let n_terms = u32::from_le_bytes(
            take(&mut buf, 4, "payload shorter than n_terms field")?
                .try_into()
                .map_err(|_| "n_terms field")?,
        ) as usize;
        if n_terms > MAX_DOC_TERMS {
            return Err("implausible term count");
        }
        let mut terms: Vec<(String, u32)> = Vec::with_capacity(n_terms.min(1024));
        for _ in 0..n_terms {
            let term_len = u16::from_le_bytes(
                take(&mut buf, 2, "payload shorter than term_len field")?
                    .try_into()
                    .map_err(|_| "term_len field")?,
            ) as usize;
            if term_len == 0 || term_len > MAX_TERM_BYTES {
                return Err("implausible term length");
            }
            let raw = take(&mut buf, term_len, "payload shorter than term bytes")?;
            let term = std::str::from_utf8(raw).map_err(|_| "term is not UTF-8")?;
            let tf = u32::from_le_bytes(
                take(&mut buf, 4, "payload shorter than tf field")?
                    .try_into()
                    .map_err(|_| "tf field")?,
            );
            if tf == 0 {
                return Err("zero term frequency");
            }
            if let Some((last, _)) = terms.last() {
                if last.as_str() >= term {
                    return Err("terms not strictly sorted");
                }
            }
            terms.push((term.to_owned(), tf));
        }
        if !buf.is_empty() {
            return Err("trailing bytes after last term");
        }
        Ok(IngestDoc { len, terms })
    }
}

/// Result of replaying a WAL byte image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReplay {
    /// Documents with `seq >= start_seq`, in sequence order.
    pub docs: Vec<IngestDoc>,
    /// Records skipped because their sequence number predates `start_seq`
    /// (already sealed, or a duplicated append).
    pub duplicates_skipped: u64,
    /// Bytes of torn tail that must be truncated away.
    pub torn_bytes: u64,
    /// Length the file should be truncated to (`0` means the header itself
    /// was torn and the file must be recreated from scratch).
    pub valid_len: u64,
    /// The sequence number the next append should carry.
    pub next_seq: u64,
}

/// Replays a WAL image, classifying every byte as applied, duplicate,
/// torn tail, or corruption. `start_seq` is the number of documents
/// already sealed into segments.
///
/// Torn tails (including a torn 8-byte header) are *recovered from*, not
/// errors. Only provable mid-log corruption — a CRC failure on a
/// non-final record, an undecodable payload, or a sequence gap — returns
/// `Err`.
pub fn replay(bytes: &[u8], start_seq: u64) -> Result<WalReplay, IndexError> {
    if bytes.len() < 8 {
        // Torn create: the header never made it to disk. Nothing was
        // acknowledged after this file was (re)created, so recover empty.
        return Ok(WalReplay {
            docs: Vec::new(),
            duplicates_skipped: 0,
            torn_bytes: bytes.len() as u64,
            valid_len: 0,
            next_seq: start_seq,
        });
    }
    let magic = u64::from_le_bytes(
        bytes[..8]
            .try_into()
            .map_err(|_| IndexError::CorruptIndex { context: "WAL magic" })?,
    );
    if magic != MAGIC_WAL {
        return Err(IndexError::UnsupportedFormat { found: magic });
    }

    let mut docs = Vec::new();
    let mut duplicates = 0u64;
    let mut expected = start_seq;
    let mut pos = 8usize;
    loop {
        let rem = &bytes[pos..];
        if rem.is_empty() {
            break;
        }
        // A frame that does not fit is a torn tail.
        if rem.len() < FRAME_BYTES {
            break;
        }
        let payload_len = u32::from_le_bytes(
            rem[0..4]
                .try_into()
                .map_err(|_| IndexError::CorruptIndex { context: "WAL frame" })?,
        ) as usize;
        let stored_crc = u32::from_le_bytes(
            rem[4..8]
                .try_into()
                .map_err(|_| IndexError::CorruptIndex { context: "WAL frame" })?,
        );
        let seq = u64::from_le_bytes(
            rem[8..16]
                .try_into()
                .map_err(|_| IndexError::CorruptIndex { context: "WAL frame" })?,
        );
        if payload_len > MAX_PAYLOAD {
            // A length field this large is either garbage from a torn
            // write (in which case the payload cannot fit either) or
            // corruption; both resolve below.
            if rem.len() >= FRAME_BYTES.saturating_add(payload_len) {
                return Err(IndexError::CorruptWal {
                    context: "implausible record length",
                    offset: pos as u64,
                });
            }
            break;
        }
        if rem.len() < FRAME_BYTES + payload_len {
            break; // torn payload
        }
        let payload = &rem[FRAME_BYTES..FRAME_BYTES + payload_len];
        let mut crc = Crc32::new();
        crc.update(&seq.to_le_bytes());
        crc.update(payload);
        let computed = crc.finish();
        let is_final = rem.len() == FRAME_BYTES + payload_len;
        if computed != stored_crc {
            if is_final {
                break; // torn final record: written but never fully flushed
            }
            return Err(IndexError::CorruptWal {
                context: "record checksum",
                offset: pos as u64,
            });
        }
        if seq < expected {
            duplicates += 1;
        } else if seq == expected {
            let doc = IngestDoc::decode(payload)
                .map_err(|context| IndexError::CorruptWal { context, offset: pos as u64 })?;
            docs.push(doc);
            expected += 1;
        } else {
            return Err(IndexError::CorruptWal {
                context: "sequence gap",
                offset: pos as u64,
            });
        }
        pos += FRAME_BYTES + payload_len;
    }

    Ok(WalReplay {
        docs,
        duplicates_skipped: duplicates,
        torn_bytes: (bytes.len() - pos) as u64,
        valid_len: pos as u64,
        next_seq: expected,
    })
}

/// An open write-ahead log. Appends are buffered in the OS page cache;
/// [`Wal::sync`] is the acknowledgment barrier.
#[derive(Debug)]
pub struct Wal {
    file: File,
    next_seq: u64,
    dirty: bool,
}

impl Wal {
    /// Creates (or truncates) the log at `path`, writes the magic header,
    /// and fsyncs both the file and its parent directory.
    ///
    /// Truncate-create is crash-safe here because the log is only ever
    /// (re)created when zero unsealed documents are acknowledged: at
    /// directory initialization and immediately after a seal. A crash
    /// mid-create leaves a torn header, which replay treats as an empty
    /// log — exactly the acknowledged state.
    pub fn create(path: &Path, next_seq: u64) -> Result<Wal, IndexError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err("creating the WAL", e))?;
        file.write_all(&MAGIC_WAL.to_le_bytes())
            .map_err(|e| io_err("writing the WAL header", e))?;
        file.sync_data().map_err(|e| io_err("fsyncing the new WAL", e))?;
        if let Some(dir) = path.parent() {
            sync_dir(dir)?;
        }
        Ok(Wal { file, next_seq, dirty: false })
    }

    /// Opens an existing log for appending, truncating it to `valid_len`
    /// first (dropping any torn tail found by [`replay`]).
    pub fn open_append(path: &Path, next_seq: u64, valid_len: u64) -> Result<Wal, IndexError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err("opening the WAL", e))?;
        let actual = file.metadata().map_err(|e| io_err("stat-ing the WAL", e))?.len();
        if actual < valid_len {
            return Err(IndexError::CorruptIndex {
                context: "WAL shorter than its valid prefix",
            });
        }
        if actual != valid_len {
            file.set_len(valid_len).map_err(|e| io_err("truncating the WAL torn tail", e))?;
            file.sync_data().map_err(|e| io_err("fsyncing the truncated WAL", e))?;
        }
        let mut wal = Wal { file, next_seq, dirty: false };
        use std::io::Seek;
        wal.file
            .seek(std::io::SeekFrom::End(0))
            .map_err(|e| io_err("seeking to the WAL tail", e))?;
        Ok(wal)
    }

    /// Sequence number the next append will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one document and returns its sequence number. The record
    /// is **not** durable until [`Wal::sync`] returns.
    pub fn append(&mut self, doc: &IngestDoc) -> Result<u64, IndexError> {
        if doc.terms.len() > MAX_DOC_TERMS {
            return Err(IndexError::CorruptIndex { context: "document has too many terms" });
        }
        for (term, _) in &doc.terms {
            if term.is_empty() || term.len() > MAX_TERM_BYTES {
                return Err(IndexError::CorruptIndex { context: "term length out of range" });
            }
        }
        let mut payload = Vec::with_capacity(8 + doc.terms.len() * 12);
        doc.encode_into(&mut payload);
        if payload.len() > MAX_PAYLOAD {
            return Err(IndexError::CorruptIndex { context: "WAL record payload too large" });
        }
        let seq = self.next_seq;
        let mut crc = Crc32::new();
        crc.update(&seq.to_le_bytes());
        crc.update(&payload);
        let mut frame = Vec::with_capacity(FRAME_BYTES + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc.finish().to_le_bytes());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame).map_err(|e| io_err("appending to the WAL", e))?;
        self.next_seq += 1;
        self.dirty = true;
        Ok(seq)
    }

    /// Durability barrier: fsyncs all appends since the last sync. Only
    /// after this returns may the appended documents be acknowledged.
    pub fn sync(&mut self) -> Result<(), IndexError> {
        if self.dirty {
            self.file.sync_data().map_err(|e| io_err("fsyncing the WAL", e))?;
            self.dirty = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(len: u32, terms: &[(&str, u32)]) -> IngestDoc {
        IngestDoc::new(len, terms.iter().map(|(t, f)| ((*t).to_owned(), *f)).collect())
    }

    fn encode_record(seq: u64, doc: &IngestDoc) -> Vec<u8> {
        let mut payload = Vec::new();
        doc.encode_into(&mut payload);
        let mut crc = Crc32::new();
        crc.update(&seq.to_le_bytes());
        crc.update(&payload);
        let mut out = Vec::new();
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc.finish().to_le_bytes());
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn image(records: &[(u64, IngestDoc)]) -> Vec<u8> {
        let mut out = MAGIC_WAL.to_le_bytes().to_vec();
        for (seq, d) in records {
            out.extend_from_slice(&encode_record(*seq, d));
        }
        out
    }

    #[test]
    fn ingest_doc_normalizes() {
        let d = IngestDoc::new(
            9,
            vec![("b".into(), 2), ("a".into(), 1), ("b".into(), 3), ("c".into(), 0)],
        );
        assert_eq!(d.terms(), &[("a".to_owned(), 1), ("b".to_owned(), 5)]);
        assert_eq!(d.len(), 9);
    }

    #[test]
    fn from_tokens_counts_frequencies() {
        let d = IngestDoc::from_tokens(["the", "cat", "the", "", "mat"]);
        assert_eq!(d.len(), 4);
        assert_eq!(
            d.terms(),
            &[("cat".to_owned(), 1), ("mat".to_owned(), 1), ("the".to_owned(), 2)]
        );
    }

    #[test]
    fn round_trip_through_replay() {
        let docs = vec![
            (0u64, doc(5, &[("alpha", 2), ("beta", 1)])),
            (1, doc(3, &[("beta", 3)])),
            (2, doc(7, &[("alpha", 1), ("gamma", 4)])),
        ];
        let img = image(&docs);
        let r = replay(&img, 0).unwrap();
        assert_eq!(r.docs, docs.into_iter().map(|(_, d)| d).collect::<Vec<_>>());
        assert_eq!(r.duplicates_skipped, 0);
        assert_eq!(r.torn_bytes, 0);
        assert_eq!(r.valid_len, img.len() as u64);
        assert_eq!(r.next_seq, 3);
    }

    #[test]
    fn torn_header_recovers_empty() {
        for len in 0..8 {
            let r = replay(&vec![0xAB; len], 42).unwrap();
            assert!(r.docs.is_empty());
            assert_eq!(r.valid_len, 0);
            assert_eq!(r.torn_bytes, len as u64);
            assert_eq!(r.next_seq, 42);
        }
    }

    #[test]
    fn wrong_magic_is_typed() {
        let mut img = image(&[]);
        img[0] ^= 0xFF;
        assert!(matches!(replay(&img, 0), Err(IndexError::UnsupportedFormat { .. })));
    }

    #[test]
    fn torn_tail_is_truncated_not_an_error() {
        let docs = vec![(0u64, doc(5, &[("alpha", 2)])), (1, doc(3, &[("beta", 1)]))];
        let full = image(&docs);
        let first_end = 8 + encode_record(0, &docs[0].1).len();
        // Cut at every byte inside the second record.
        for cut in first_end + 1..full.len() {
            let r = replay(&full[..cut], 0).unwrap();
            assert_eq!(r.docs.len(), 1, "cut at {cut}");
            assert_eq!(r.valid_len, first_end as u64, "cut at {cut}");
            assert_eq!(r.torn_bytes, (cut - first_end) as u64, "cut at {cut}");
            assert_eq!(r.next_seq, 1);
        }
    }

    #[test]
    fn corrupt_final_record_is_torn() {
        let docs = vec![(0u64, doc(5, &[("alpha", 2)])), (1, doc(3, &[("beta", 1)]))];
        let mut img = image(&docs);
        let n = img.len();
        img[n - 1] ^= 0x01; // flip a payload byte of the last record
        let r = replay(&img, 0).unwrap();
        assert_eq!(r.docs.len(), 1);
        assert_eq!(r.next_seq, 1);
    }

    #[test]
    fn corrupt_interior_record_is_typed_error() {
        let docs = vec![(0u64, doc(5, &[("alpha", 2)])), (1, doc(3, &[("beta", 1)]))];
        let mut img = image(&docs);
        img[8 + FRAME_BYTES] ^= 0x01; // payload byte of the FIRST record
        match replay(&img, 0) {
            Err(IndexError::CorruptWal { context, offset }) => {
                assert_eq!(context, "record checksum");
                assert_eq!(offset, 8);
            }
            other => panic!("expected CorruptWal, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_records_are_skipped() {
        let d0 = doc(5, &[("alpha", 2)]);
        let d1 = doc(3, &[("beta", 1)]);
        let img = image(&[(0, d0.clone()), (0, d0), (1, d1.clone())]);
        let r = replay(&img, 0).unwrap();
        assert_eq!(r.docs.len(), 2);
        assert_eq!(r.docs[1], d1);
        assert_eq!(r.duplicates_skipped, 1);
        assert_eq!(r.next_seq, 2);
    }

    #[test]
    fn sealed_records_are_skipped_via_start_seq() {
        let img = image(&[(0, doc(5, &[("a", 1)])), (1, doc(6, &[("b", 1)]))]);
        let r = replay(&img, 2).unwrap();
        assert!(r.docs.is_empty());
        assert_eq!(r.duplicates_skipped, 2);
        assert_eq!(r.next_seq, 2);
    }

    #[test]
    fn sequence_gap_is_typed_error() {
        let img = image(&[(0, doc(5, &[("a", 1)])), (2, doc(6, &[("b", 1)]))]);
        match replay(&img, 0) {
            Err(IndexError::CorruptWal { context, .. }) => assert_eq!(context, "sequence gap"),
            other => panic!("expected CorruptWal, got {other:?}"),
        }
    }

    #[test]
    fn undecodable_payload_is_typed_error() {
        // Valid CRC over garbage payload: decode must reject, not panic.
        let seq = 0u64;
        let payload = [0xFFu8; 3];
        let mut crc = Crc32::new();
        crc.update(&seq.to_le_bytes());
        crc.update(&payload);
        let mut img = MAGIC_WAL.to_le_bytes().to_vec();
        img.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        img.extend_from_slice(&crc.finish().to_le_bytes());
        img.extend_from_slice(&seq.to_le_bytes());
        img.extend_from_slice(&payload);
        assert!(matches!(replay(&img, 0), Err(IndexError::CorruptWal { .. })));
    }

    #[test]
    fn file_round_trip_append_sync_replay() {
        let dir = std::env::temp_dir().join(format!("iiu-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(WAL_FILE_NAME);
        let docs = [doc(5, &[("alpha", 2), ("beta", 1)]), doc(3, &[("beta", 3)])];
        {
            let mut wal = Wal::create(&path, 0).unwrap();
            for (i, d) in docs.iter().enumerate() {
                assert_eq!(wal.append(d).unwrap(), i as u64);
            }
            wal.sync().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        let r = replay(&bytes, 0).unwrap();
        assert_eq!(r.docs, docs.to_vec());
        // Reopen for append and extend.
        let mut wal = Wal::open_append(&path, r.next_seq, r.valid_len).unwrap();
        let d2 = doc(9, &[("gamma", 1)]);
        assert_eq!(wal.append(&d2).unwrap(), 2);
        wal.sync().unwrap();
        let r = replay(&std::fs::read(&path).unwrap(), 0).unwrap();
        assert_eq!(r.docs.len(), 3);
        assert_eq!(r.docs[2], d2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
