//! Bit-level packing primitives.
//!
//! The IIU index stores `(d-gap, tf)` pairs bit-packed at the minimum
//! per-block bitwidth (paper §3.1). The decompression unit extracts fields
//! with shifting and masking; this module is the software equivalent, an
//! LSB-first bit stream over a byte buffer.
//!
//! # Decode kernels
//!
//! Reads come in three tiers, fastest first:
//!
//! * [`unpack_into`] / [`try_unpack_into`] — the batch kernel: uniform-width
//!   unpacking in unrolled 32-value groups, one unaligned little-endian
//!   64-bit window load per value, monomorphized per width so masks and
//!   strides are compile-time constants (the software analogue of
//!   SIMD-BP128-style word-aligned unpacking, and of the DCU extracting one
//!   posting per cycle);
//! * [`BitReader::read`] / [`BitReader::try_read`] — single-field extraction
//!   through the same 64-bit window (width ≤ 32 and a bit offset within a
//!   byte keep every field inside one window);
//! * [`unpack_all_scalar`] — the original byte-at-a-time loop, retained as
//!   the reference implementation for the equivalence suite and the perf
//!   gate's before/after comparison.
//!
//! The `try_*` variants return [`IndexError::CorruptIndex`] instead of
//! panicking when a corrupted payload would read past the buffer; the
//! panicking variants are thin wrappers for callers operating on validated
//! indexes.

use crate::error::IndexError;

/// Number of bits needed to represent `value` (0 needs 0 bits).
///
/// This is the paper's `⌈log(v + 1)⌉` (Eq. 2): the bitwidth that can hold
/// every value in `0..=value`.
///
/// # Example
///
/// ```
/// use iiu_index::bitpack::bits_for;
/// assert_eq!(bits_for(0), 0);
/// assert_eq!(bits_for(1), 1);
/// assert_eq!(bits_for(255), 8);
/// assert_eq!(bits_for(256), 9);
/// assert_eq!(bits_for(u32::MAX), 32);
/// ```
pub fn bits_for(value: u32) -> u8 {
    (32 - value.leading_zeros()) as u8
}

/// Low-`width` mask as a u64 (valid for widths 0..=32 without branching:
/// `1 << 32` fits in a u64).
#[inline(always)]
fn mask64(width: u8) -> u64 {
    (1u64 << width) - 1
}

/// Loads the 8-byte little-endian window starting at `byte_idx`,
/// zero-padding past the end of the buffer. In-bounds fields extracted from
/// a padded window are unaffected: padding only contributes bits above the
/// field's mask.
#[inline(always)]
fn window_at(bytes: &[u8], byte_idx: usize) -> u64 {
    let mut arr = [0u8; 8];
    match bytes.get(byte_idx..byte_idx + 8) {
        Some(chunk) => arr.copy_from_slice(chunk),
        None => {
            if byte_idx < bytes.len() {
                let tail = &bytes[byte_idx..];
                arr[..tail.len()].copy_from_slice(tail);
            }
        }
    }
    u64::from_le_bytes(arr)
}

/// Extracts a `width`-bit field (0..=32) starting at absolute bit `bit`.
/// The caller must have bounds-checked `bit + width` against the buffer;
/// the window load itself zero-pads, so this never indexes out of bounds.
/// Width 0 reads nothing and returns 0.
#[inline(always)]
pub(crate) fn extract(bytes: &[u8], bit: usize, width: u8) -> u32 {
    let window = window_at(bytes, bit >> 3);
    ((window >> (bit & 7)) & mask64(width)) as u32
}

/// The original byte-at-a-time field extraction, kept as the reference the
/// batch kernels are tested against (and benchmarked against as "before").
#[inline]
fn scalar_extract(bytes: &[u8], mut cursor: usize, width: u8) -> (u32, usize) {
    let mut out: u32 = 0;
    let mut got: u8 = 0;
    while got < width {
        let byte_idx = cursor / 8;
        let bit_idx = (cursor % 8) as u8;
        assert!(byte_idx < bytes.len(), "bit read past end of buffer");
        let avail = 8 - bit_idx;
        let take = avail.min(width - got);
        let mask = ((1u16 << take) - 1) as u8;
        let chunk = (bytes[byte_idx] >> bit_idx) & mask;
        out |= u32::from(chunk) << got;
        got += take;
        cursor += take as usize;
    }
    (out, cursor)
}

/// Writes unsigned integers of arbitrary bitwidth (0..=32) into a byte
/// buffer, LSB-first within each byte.
///
/// # Example
///
/// ```
/// use iiu_index::bitpack::{BitWriter, BitReader};
/// let mut w = BitWriter::new();
/// w.write(5, 3);
/// w.write(1000, 10);
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read(3), 5);
/// assert_eq!(r.read(10), 1000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte (0..8).
    bit_pos: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the low `width` bits of `value`.
    ///
    /// A width of 0 writes nothing (used for blocks whose values are all
    /// zero, e.g. a run of identical docIDs' first d-gap).
    ///
    /// # Panics
    ///
    /// Panics if `width > 32` or if `value` does not fit in `width` bits.
    pub fn write(&mut self, value: u32, width: u8) {
        assert!(width <= 32, "bitwidth must be at most 32");
        if width < 32 {
            assert!(
                u64::from(value) < (1u64 << width),
                "value {value} does not fit in {width} bits"
            );
        }
        let mut remaining = width;
        let mut v = value;
        while remaining > 0 {
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let free = 8 - self.bit_pos;
            let take = free.min(remaining);
            let mask = if take == 32 { u32::MAX } else { (1u32 << take) - 1 };
            let chunk = (v & mask) as u8;
            *self.bytes.last_mut().expect("byte pushed above") |= chunk << self.bit_pos;
            v = if take == 32 { 0 } else { v >> take };
            self.bit_pos = (self.bit_pos + take) % 8;
            remaining -= take;
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Pads to the next byte boundary and returns the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }

    /// Pads the stream so the next write starts at a byte boundary.
    pub fn align_to_byte(&mut self) {
        self.bit_pos = 0;
    }
}

/// Reads back integers written by [`BitWriter`], LSB-first.
///
/// Field extraction goes through a 64-bit little-endian window: a field of
/// at most 32 bits starting at any bit offset within a byte spans at most
/// 39 bits, so one window load plus a shift and mask recovers it — no
/// per-byte loop.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit cursor.
    cursor: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes` starting at bit 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, cursor: 0 }
    }

    /// Creates a reader starting at an absolute bit offset.
    pub fn with_bit_offset(bytes: &'a [u8], bit_offset: usize) -> Self {
        BitReader { bytes, cursor: bit_offset }
    }

    /// Reads `width` bits (0..=32) and advances the cursor.
    ///
    /// # Panics
    ///
    /// Panics if the read runs past the end of the buffer. Untrusted
    /// payloads should use [`BitReader::try_read`] instead.
    pub fn read(&mut self, width: u8) -> u32 {
        match self.try_read(width) {
            Ok(v) => v,
            Err(_) => panic!("bit read past end of buffer"),
        }
    }

    /// Reads `width` bits (0..=32) and advances the cursor, returning
    /// [`IndexError::CorruptIndex`] instead of panicking if the read would
    /// run past the end of the buffer.
    ///
    /// # Panics
    ///
    /// Panics if `width > 32` (a caller bug, not a data fault).
    pub fn try_read(&mut self, width: u8) -> Result<u32, IndexError> {
        assert!(width <= 32, "bitwidth must be at most 32");
        if width == 0 {
            return Ok(0);
        }
        let end = self.cursor + width as usize;
        if end > self.bytes.len() * 8 {
            return Err(IndexError::CorruptIndex { context: "bit read past end of payload" });
        }
        let v = extract(self.bytes, self.cursor, width);
        self.cursor = end;
        Ok(v)
    }

    /// Current absolute bit position.
    pub fn bit_pos(&self) -> usize {
        self.cursor
    }

    /// Skips `width` bits without decoding them.
    pub fn skip(&mut self, width: usize) {
        self.cursor += width;
    }
}

/// One little-endian 8-byte window load.
#[inline(always)]
fn load_word(bytes: &[u8], byte: usize) -> u64 {
    let mut arr = [0u8; 8];
    arr.copy_from_slice(&bytes[byte..byte + 8]);
    u64::from_le_bytes(arr)
}

/// Unpacks 32 values of constant width `W` starting at `start_bit`,
/// appending to `out`. Monomorphized per width: the mask and stride are
/// compile-time constants, and the staging array lets the whole group land
/// in `out` with one `extend_from_slice`.
///
/// The values stream through a 64-bit accumulator holding `avail` valid
/// low bits (zeros above), refilled with one whole-word load per 64 bits
/// consumed — one bounds check per word instead of per value.
///
/// The caller guarantees every refill window is in bounds:
/// `((start_bit + 32 * W) >> 3) + 8 <= bytes.len()` (refills land at
/// `(start_bit >> 3) + 8k` for `k < ceil(((start_bit & 7) + 32 * W) / 64)`,
/// which that condition covers).
#[inline(always)]
fn unpack_group32<const W: usize>(bytes: &[u8], start_bit: usize, out: &mut Vec<u32>) {
    let m = mask64(W as u8);
    let mut buf = [0u32; 32];
    let mut byte = start_bit >> 3;
    let lead = (start_bit & 7) as u32;
    // A 32-value group always spans exactly 4·W bytes, so a byte-aligned
    // start stays byte-aligned group after group. For byte-divisible
    // widths that makes every value a plain little-endian load — these
    // are also the widths where the scalar fallback is fastest, so the
    // streaming loop alone is not a big enough win there. The `W` match
    // is resolved at monomorphization time.
    if lead == 0 && matches!(W, 4 | 8 | 16 | 24 | 32) {
        let src = &bytes[byte..byte + 4 * W];
        match W {
            4 => {
                for (pair, &b) in buf.chunks_exact_mut(2).zip(src) {
                    pair[0] = u32::from(b & 0xf);
                    pair[1] = u32::from(b >> 4);
                }
            }
            8 => {
                for (slot, &b) in buf.iter_mut().zip(src) {
                    *slot = u32::from(b);
                }
            }
            16 => {
                for (slot, c) in buf.iter_mut().zip(src.chunks_exact(2)) {
                    *slot = u32::from(u16::from_le_bytes([c[0], c[1]]));
                }
            }
            24 => {
                for (slot, c) in buf.iter_mut().zip(src.chunks_exact(3)) {
                    *slot = u32::from_le_bytes([c[0], c[1], c[2], 0]);
                }
            }
            32 => {
                for (slot, c) in buf.iter_mut().zip(src.chunks_exact(4)) {
                    *slot = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                }
            }
            _ => unreachable!("byte-divisible widths handled above"),
        }
        out.extend_from_slice(&buf);
        return;
    }
    let mut acc = load_word(bytes, byte) >> lead;
    let mut avail = 64 - lead;
    byte += 8;
    for slot in &mut buf {
        if avail as usize >= W {
            *slot = (acc & m) as u32;
            acc >>= W;
            avail -= W as u32;
        } else {
            // Low `avail` bits from the accumulator, the rest from the
            // next word. `avail < W <= 32`, so no shift reaches 64.
            let word = load_word(bytes, byte);
            byte += 8;
            *slot = ((acc | (word << avail)) & m) as u32;
            acc = word >> (W as u32 - avail);
            avail = 64 - (W as u32 - avail);
        }
    }
    out.extend_from_slice(&buf);
}

/// The per-width monomorphized group kernel (widths 1..=32).
fn group_kernel(width: u8) -> fn(&[u8], usize, &mut Vec<u32>) {
    macro_rules! dispatch {
        ($($w:literal),*) => {
            match width {
                $($w => unpack_group32::<$w>,)*
                _ => unreachable!("group kernel widths are 1..=32"),
            }
        };
    }
    dispatch!(
        1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24,
        25, 26, 27, 28, 29, 30, 31, 32
    )
}

/// Batch kernel: appends `n` values of uniform `width` (0..=32) read from
/// `bytes` starting at absolute bit `bit_offset` onto `out`, without
/// allocating beyond `out`'s growth. The bulk runs in unrolled 32-value
/// groups of word-window extractions; the unaligned tail (and any group
/// whose final window would touch the buffer edge) falls back to the
/// field-at-a-time path.
///
/// Width 0 appends `n` zeros without reading any bits.
///
/// # Errors
///
/// Returns [`IndexError::CorruptIndex`] if `width > 32` or the read would
/// run past the end of `bytes`; `out` is untouched on error.
pub fn try_unpack_into(
    bytes: &[u8],
    bit_offset: usize,
    n: usize,
    width: u8,
    out: &mut Vec<u32>,
) -> Result<(), IndexError> {
    if width > 32 {
        return Err(IndexError::CorruptIndex { context: "bitwidth above 32" });
    }
    if width == 0 {
        out.resize(out.len() + n, 0);
        return Ok(());
    }
    let w = width as usize;
    let end_bits = bit_offset as u64 + n as u64 * w as u64;
    if end_bits > bytes.len() as u64 * 8 {
        return Err(IndexError::CorruptIndex { context: "bit read past end of payload" });
    }
    out.reserve(n);
    let kernel = group_kernel(width);
    let mut bit = bit_offset;
    let mut remaining = n;
    while remaining >= 32 && ((bit + 32 * w) >> 3) + 8 <= bytes.len() {
        kernel(bytes, bit, out);
        bit += 32 * w;
        remaining -= 32;
    }
    // Tail: bounds were checked up front, so plain reads cannot fail.
    let mut r = BitReader::with_bit_offset(bytes, bit);
    for _ in 0..remaining {
        out.push(r.read(width));
    }
    Ok(())
}

/// [`try_unpack_into`], panicking on corrupt input. For payloads validated
/// at load time.
///
/// # Panics
///
/// Panics if `width > 32` or the read runs past the end of `bytes`.
pub fn unpack_into(bytes: &[u8], bit_offset: usize, n: usize, width: u8, out: &mut Vec<u32>) {
    match try_unpack_into(bytes, bit_offset, n, width, out) {
        Ok(()) => {}
        Err(_) => panic!("bit read past end of buffer"),
    }
}

/// Packs a slice of values at a uniform `width`, byte-aligned at the end.
///
/// Convenience used by the fixed-width baseline codecs.
pub fn pack_all(values: &[u32], width: u8) -> Vec<u8> {
    let mut w = BitWriter::new();
    for &v in values {
        w.write(v, width);
    }
    w.finish()
}

/// Unpacks `n` values of uniform `width` from `bytes` (batch kernel).
pub fn unpack_all(bytes: &[u8], n: usize, width: u8) -> Vec<u32> {
    let mut out = Vec::with_capacity(n);
    unpack_into(bytes, 0, n, width, &mut out);
    out
}

/// Reference implementation of [`unpack_all`]: the original byte-at-a-time
/// loop. Kept for the proptest equivalence suite and as the "before" side
/// of the decode perf gate — do not use on hot paths.
pub fn unpack_all_scalar(bytes: &[u8], n: usize, width: u8) -> Vec<u32> {
    assert!(width <= 32, "bitwidth must be at most 32");
    let mut cursor = 0usize;
    (0..n)
        .map(|_| {
            let (v, next) =
                if width == 0 { (0, cursor) } else { scalar_extract(bytes, cursor, width) };
            cursor = next;
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for((1 << 31) - 1), 31);
        assert_eq!(bits_for(1 << 31), 32);
    }

    #[test]
    fn zero_width_writes_nothing() {
        let mut w = BitWriter::new();
        w.write(0, 0);
        w.write(0, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.finish().is_empty());
    }

    #[test]
    fn full_width_roundtrip() {
        let mut w = BitWriter::new();
        w.write(u32::MAX, 32);
        w.write(0x1234_5678, 32);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(32), u32::MAX);
        assert_eq!(r.read(32), 0x1234_5678);
    }

    #[test]
    fn mixed_width_roundtrip() {
        let widths = [1u8, 3, 7, 8, 9, 13, 17, 31, 32, 5];
        let values = [1u32, 5, 100, 255, 300, 8000, 70000, 1 << 30, u32::MAX, 21];
        let mut w = BitWriter::new();
        for (&v, &wd) in values.iter().zip(&widths) {
            w.write(v, wd);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (&v, &wd) in values.iter().zip(&widths) {
            assert_eq!(r.read(wd), v);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn write_rejects_oversized_value() {
        let mut w = BitWriter::new();
        w.write(8, 3);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn read_past_end_panics() {
        let bytes = [0u8];
        let mut r = BitReader::new(&bytes);
        let _ = r.read(9);
    }

    #[test]
    fn try_read_reports_corrupt_instead_of_panicking() {
        let bytes = [0xffu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.try_read(8), Ok(0xff));
        assert!(matches!(r.try_read(1), Err(IndexError::CorruptIndex { .. })));
        // Zero-width reads never touch the buffer, even at the end.
        assert_eq!(r.try_read(0), Ok(0));
    }

    #[test]
    fn try_read_does_not_advance_on_error() {
        let bytes = [0b1010_1010u8];
        let mut r = BitReader::new(&bytes);
        assert!(r.try_read(32).is_err());
        assert_eq!(r.bit_pos(), 0);
        assert_eq!(r.try_read(8), Ok(0b1010_1010));
    }

    #[test]
    fn bit_len_tracks_writes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write(1, 1);
        assert_eq!(w.bit_len(), 1);
        w.write(0, 10);
        assert_eq!(w.bit_len(), 11);
    }

    #[test]
    fn reader_with_offset_skips_prefix() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        w.write(42, 8);
        let bytes = w.finish();
        let mut r = BitReader::with_bit_offset(&bytes, 3);
        assert_eq!(r.read(8), 42);
    }

    #[test]
    fn pack_unpack_all() {
        let vals = [7u32, 0, 3, 5, 1];
        let packed = pack_all(&vals, 3);
        assert_eq!(packed.len(), 2); // 15 bits -> 2 bytes
        assert_eq!(unpack_all(&packed, 5, 3), vals);
        assert_eq!(unpack_all_scalar(&packed, 5, 3), vals);
    }

    #[test]
    fn unpack_into_width_zero_appends_zeros_without_reading() {
        // Width 0 must not read (or require) any bytes at all.
        let mut out = vec![9u32];
        try_unpack_into(&[], 0, 4, 0, &mut out).unwrap();
        assert_eq!(out, vec![9, 0, 0, 0, 0]);
        // ... even with a nonzero bit offset into an empty buffer.
        let mut out = Vec::new();
        try_unpack_into(&[], 100, 3, 0, &mut out).unwrap();
        assert_eq!(out, vec![0, 0, 0]);
    }

    #[test]
    fn unpack_all_scalar_width_zero() {
        assert_eq!(unpack_all_scalar(&[], 3, 0), vec![0, 0, 0]);
    }

    #[test]
    fn unpack_into_appends_after_existing_contents() {
        let packed = pack_all(&[1, 2, 3], 4);
        let mut out = vec![7u32];
        unpack_into(&packed, 0, 3, 4, &mut out);
        assert_eq!(out, vec![7, 1, 2, 3]);
    }

    #[test]
    fn try_unpack_into_rejects_overrun_and_leaves_out_untouched() {
        let packed = pack_all(&[1, 2, 3], 4); // 12 bits -> 2 bytes
        let mut out = vec![42u32];
        assert!(matches!(
            try_unpack_into(&packed, 0, 5, 4, &mut out),
            Err(IndexError::CorruptIndex { .. })
        ));
        assert_eq!(out, vec![42]);
        assert!(matches!(
            try_unpack_into(&packed, 0, 1, 33, &mut out),
            Err(IndexError::CorruptIndex { .. })
        ));
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn unpack_into_long_runs_cross_group_boundaries() {
        // > 32 values exercises the grouped fast path plus the tail.
        for width in [1u8, 4, 7, 8, 13, 20, 32] {
            let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
            let values: Vec<u32> =
                (0..100u32).map(|i| i.wrapping_mul(0x9e37_79b9) & mask).collect();
            let packed = pack_all(&values, width);
            assert_eq!(unpack_all(&packed, values.len(), width), values, "width {width}");
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip_uniform(values in proptest::collection::vec(0u32..1 << 20, 0..200)) {
            let width = values.iter().copied().map(bits_for).max().unwrap_or(0);
            let packed = pack_all(&values, width);
            prop_assert_eq!(unpack_all(&packed, values.len(), width), values);
        }

        #[test]
        fn prop_roundtrip_mixed(pairs in proptest::collection::vec((0u32..u32::MAX, 1u8..=32), 0..200)) {
            let mut w = BitWriter::new();
            let mut expected = Vec::new();
            for &(v, wd) in &pairs {
                let mask = if wd == 32 { u32::MAX } else { (1u32 << wd) - 1 };
                let v = v & mask;
                w.write(v, wd);
                expected.push((v, wd));
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for (v, wd) in expected {
                prop_assert_eq!(r.read(wd), v);
            }
        }

        #[test]
        fn prop_bit_len_matches_sum(pairs in proptest::collection::vec((0u32..16, 4u8..=16), 0..64)) {
            let mut w = BitWriter::new();
            let mut total = 0usize;
            for &(v, wd) in &pairs {
                w.write(v, wd);
                total += wd as usize;
            }
            prop_assert_eq!(w.bit_len(), total);
        }

        /// The batch kernel agrees with the scalar reference for every
        /// width 0..=32, random length, and random (unaligned) starting
        /// bit offset.
        #[test]
        fn prop_unpack_into_equals_scalar(
            width in 0u8..=32,
            n in 0usize..200,
            prefix_bits in 0usize..64,
            seed in 0u64..u64::MAX,
        ) {
            let mask = if width == 0 {
                0
            } else if width == 32 {
                u32::MAX
            } else {
                (1u32 << width) - 1
            };
            let mut s = seed;
            let values: Vec<u32> = (0..n)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (s >> 32) as u32 & mask
                })
                .collect();
            // Junk prefix so the batch starts at an arbitrary bit offset.
            let mut w = BitWriter::new();
            for _ in 0..prefix_bits {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                w.write((s >> 63) as u32, 1);
            }
            for &v in &values {
                w.write(v, width);
            }
            let bytes = w.finish();

            let mut got = Vec::new();
            try_unpack_into(&bytes, prefix_bits, n, width, &mut got).unwrap();
            // Scalar reference at the same offset.
            let mut cursor = prefix_bits;
            let reference: Vec<u32> = (0..n)
                .map(|_| {
                    if width == 0 { return 0; }
                    let (v, next) = scalar_extract(&bytes, cursor, width);
                    cursor = next;
                    v
                })
                .collect();
            prop_assert_eq!(&got, &reference);
            prop_assert_eq!(&got, &values);
        }

        /// The windowed single-field read agrees with the scalar reference
        /// at every offset.
        #[test]
        fn prop_read_equals_scalar(
            width in 1u8..=32,
            prefix_bits in 0usize..64,
            value in 0u32..u32::MAX,
        ) {
            let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
            let value = value & mask;
            let mut w = BitWriter::new();
            let mut s = 0x9e37_79b9_7f4a_7c15u64 ^ (prefix_bits as u64);
            for _ in 0..prefix_bits {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                w.write((s >> 63) as u32, 1);
            }
            w.write(value, width);
            let bytes = w.finish();
            let mut r = BitReader::with_bit_offset(&bytes, prefix_bits);
            let fast = r.read(width);
            let (slow, _) = scalar_extract(&bytes, prefix_bits, width);
            prop_assert_eq!(fast, slow);
            prop_assert_eq!(fast, value);
        }
    }
}
