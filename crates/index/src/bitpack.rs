//! Bit-level packing primitives.
//!
//! The IIU index stores `(d-gap, tf)` pairs bit-packed at the minimum
//! per-block bitwidth (paper §3.1). The decompression unit extracts fields
//! with shifting and masking; this module is the software equivalent, an
//! LSB-first bit stream over a byte buffer.

/// Number of bits needed to represent `value` (0 needs 0 bits).
///
/// This is the paper's `⌈log(v + 1)⌉` (Eq. 2): the bitwidth that can hold
/// every value in `0..=value`.
///
/// # Example
///
/// ```
/// use iiu_index::bitpack::bits_for;
/// assert_eq!(bits_for(0), 0);
/// assert_eq!(bits_for(1), 1);
/// assert_eq!(bits_for(255), 8);
/// assert_eq!(bits_for(256), 9);
/// assert_eq!(bits_for(u32::MAX), 32);
/// ```
pub fn bits_for(value: u32) -> u8 {
    (32 - value.leading_zeros()) as u8
}

/// Writes unsigned integers of arbitrary bitwidth (0..=32) into a byte
/// buffer, LSB-first within each byte.
///
/// # Example
///
/// ```
/// use iiu_index::bitpack::{BitWriter, BitReader};
/// let mut w = BitWriter::new();
/// w.write(5, 3);
/// w.write(1000, 10);
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read(3), 5);
/// assert_eq!(r.read(10), 1000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte (0..8).
    bit_pos: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the low `width` bits of `value`.
    ///
    /// A width of 0 writes nothing (used for blocks whose values are all
    /// zero, e.g. a run of identical docIDs' first d-gap).
    ///
    /// # Panics
    ///
    /// Panics if `width > 32` or if `value` does not fit in `width` bits.
    pub fn write(&mut self, value: u32, width: u8) {
        assert!(width <= 32, "bitwidth must be at most 32");
        if width < 32 {
            assert!(
                u64::from(value) < (1u64 << width),
                "value {value} does not fit in {width} bits"
            );
        }
        let mut remaining = width;
        let mut v = value;
        while remaining > 0 {
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let free = 8 - self.bit_pos;
            let take = free.min(remaining);
            let mask = if take == 32 { u32::MAX } else { (1u32 << take) - 1 };
            let chunk = (v & mask) as u8;
            *self.bytes.last_mut().expect("byte pushed above") |= chunk << self.bit_pos;
            v = if take == 32 { 0 } else { v >> take };
            self.bit_pos = (self.bit_pos + take) % 8;
            remaining -= take;
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Pads to the next byte boundary and returns the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }

    /// Pads the stream so the next write starts at a byte boundary.
    pub fn align_to_byte(&mut self) {
        self.bit_pos = 0;
    }
}

/// Reads back integers written by [`BitWriter`], LSB-first.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit cursor.
    cursor: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes` starting at bit 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, cursor: 0 }
    }

    /// Creates a reader starting at an absolute bit offset.
    pub fn with_bit_offset(bytes: &'a [u8], bit_offset: usize) -> Self {
        BitReader { bytes, cursor: bit_offset }
    }

    /// Reads `width` bits (0..=32) and advances the cursor.
    ///
    /// # Panics
    ///
    /// Panics if the read runs past the end of the buffer.
    pub fn read(&mut self, width: u8) -> u32 {
        assert!(width <= 32, "bitwidth must be at most 32");
        let mut out: u32 = 0;
        let mut got: u8 = 0;
        while got < width {
            let byte_idx = self.cursor / 8;
            let bit_idx = (self.cursor % 8) as u8;
            assert!(byte_idx < self.bytes.len(), "bit read past end of buffer");
            let avail = 8 - bit_idx;
            let take = avail.min(width - got);
            let mask = ((1u16 << take) - 1) as u8;
            let chunk = (self.bytes[byte_idx] >> bit_idx) & mask;
            out |= u32::from(chunk) << got;
            got += take;
            self.cursor += take as usize;
        }
        out
    }

    /// Current absolute bit position.
    pub fn bit_pos(&self) -> usize {
        self.cursor
    }

    /// Skips `width` bits without decoding them.
    pub fn skip(&mut self, width: usize) {
        self.cursor += width;
    }
}

/// Packs a slice of values at a uniform `width`, byte-aligned at the end.
///
/// Convenience used by the fixed-width baseline codecs.
pub fn pack_all(values: &[u32], width: u8) -> Vec<u8> {
    let mut w = BitWriter::new();
    for &v in values {
        w.write(v, width);
    }
    w.finish()
}

/// Unpacks `n` values of uniform `width` from `bytes`.
pub fn unpack_all(bytes: &[u8], n: usize, width: u8) -> Vec<u32> {
    let mut r = BitReader::new(bytes);
    (0..n).map(|_| r.read(width)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for((1 << 31) - 1), 31);
        assert_eq!(bits_for(1 << 31), 32);
    }

    #[test]
    fn zero_width_writes_nothing() {
        let mut w = BitWriter::new();
        w.write(0, 0);
        w.write(0, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.finish().is_empty());
    }

    #[test]
    fn full_width_roundtrip() {
        let mut w = BitWriter::new();
        w.write(u32::MAX, 32);
        w.write(0x1234_5678, 32);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(32), u32::MAX);
        assert_eq!(r.read(32), 0x1234_5678);
    }

    #[test]
    fn mixed_width_roundtrip() {
        let widths = [1u8, 3, 7, 8, 9, 13, 17, 31, 32, 5];
        let values = [1u32, 5, 100, 255, 300, 8000, 70000, 1 << 30, u32::MAX, 21];
        let mut w = BitWriter::new();
        for (&v, &wd) in values.iter().zip(&widths) {
            w.write(v, wd);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (&v, &wd) in values.iter().zip(&widths) {
            assert_eq!(r.read(wd), v);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn write_rejects_oversized_value() {
        let mut w = BitWriter::new();
        w.write(8, 3);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn read_past_end_panics() {
        let bytes = [0u8];
        let mut r = BitReader::new(&bytes);
        let _ = r.read(9);
    }

    #[test]
    fn bit_len_tracks_writes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write(1, 1);
        assert_eq!(w.bit_len(), 1);
        w.write(0, 10);
        assert_eq!(w.bit_len(), 11);
    }

    #[test]
    fn reader_with_offset_skips_prefix() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        w.write(42, 8);
        let bytes = w.finish();
        let mut r = BitReader::with_bit_offset(&bytes, 3);
        assert_eq!(r.read(8), 42);
    }

    #[test]
    fn pack_unpack_all() {
        let vals = [7u32, 0, 3, 5, 1];
        let packed = pack_all(&vals, 3);
        assert_eq!(packed.len(), 2); // 15 bits -> 2 bytes
        assert_eq!(unpack_all(&packed, 5, 3), vals);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_uniform(values in proptest::collection::vec(0u32..1 << 20, 0..200)) {
            let width = values.iter().copied().map(bits_for).max().unwrap_or(0);
            let packed = pack_all(&values, width);
            prop_assert_eq!(unpack_all(&packed, values.len(), width), values);
        }

        #[test]
        fn prop_roundtrip_mixed(pairs in proptest::collection::vec((0u32..u32::MAX, 1u8..=32), 0..200)) {
            let mut w = BitWriter::new();
            let mut expected = Vec::new();
            for &(v, wd) in &pairs {
                let mask = if wd == 32 { u32::MAX } else { (1u32 << wd) - 1 };
                let v = v & mask;
                w.write(v, wd);
                expected.push((v, wd));
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for (v, wd) in expected {
                prop_assert_eq!(r.read(wd), v);
            }
        }

        #[test]
        fn prop_bit_len_matches_sum(pairs in proptest::collection::vec((0u32..16, 4u8..=16), 0..64)) {
            let mut w = BitWriter::new();
            let mut total = 0usize;
            for &(v, wd) in &pairs {
                w.write(v, wd);
                total += wd as usize;
            }
            prop_assert_eq!(w.bit_len(), total);
        }
    }
}
