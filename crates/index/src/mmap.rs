//! Read-only memory mapping with no external dependencies.
//!
//! The storage layer (DESIGN.md §19) serves index payloads straight out
//! of the page cache instead of materializing them on the heap. This
//! module owns the one `unsafe` boundary that makes that possible: a
//! thin RAII wrapper over raw `mmap(2)`/`munmap(2)` (declared directly
//! against the platform libc — the workspace builds offline, with no
//! `libc` crate), plus `mincore(2)` for residency estimates and
//! `posix_fadvise(2)` so the bench harness can evict a file from the
//! page cache to measure cold-cache decode.
//!
//! # Safety argument
//!
//! A [`Mmap`] hands out `&[u8]` views of a file mapping, which is only
//! sound while the bytes behind the pointer cannot change or disappear:
//!
//! * The mapping is `PROT_READ` + `MAP_PRIVATE`: writes by other
//!   processes to the same file after we map it are not guaranteed to be
//!   visible (and index files are written via tmp+rename, never in
//!   place — see [`crate::segment::write_atomic`] and the CLI build
//!   path), so the bytes we parse are the bytes we validated.
//! * The pointer/length pair is immutable for the life of the `Mmap`
//!   and `munmap` happens exactly once, in `Drop`. Every borrowed slice
//!   is tied to the `Mmap`'s lifetime (or to an `Arc<Mmap>` keeping it
//!   alive), so no view can outlive the mapping.
//! * Truncating a mapped file out from under a live mapping raises
//!   `SIGBUS` on access. That failure mode is outside the threat model:
//!   index files are immutable once published (tmp+rename), and the
//!   documented operational contract is "do not truncate an index a
//!   server currently maps". Corruption *within* a stable file is fully
//!   handled — eagerly for structural sections, lazily (CRC on first
//!   touch) for payloads — with typed errors, never UB.
//! * A zero-length file maps to an empty slice without calling `mmap`
//!   (`mmap` with length 0 is EINVAL).
//!
//! On non-Unix platforms the type falls back to reading the file into an
//! owned buffer: same API, no zero-copy benefit.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fs::File;
use std::path::Path;

use crate::error::IndexError;

fn io_err(context: &'static str, e: std::io::Error) -> IndexError {
    IndexError::Io { context, message: e.to_string() }
}

#[cfg(unix)]
mod sys {
    //! Raw declarations against the platform libc. Linux/x86-64 and the
    //! other 64-bit unixes we target agree on these signatures; the
    //! constants below are the Linux values (macOS differs only in
    //! `MAP_FAILED` spelling, which is `-1` there too).
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const POSIX_FADV_DONTNEED: c_int = 4;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn mincore(addr: *mut c_void, len: usize, vec: *mut u8) -> c_int;
        pub fn posix_fadvise(fd: c_int, offset: i64, len: i64, advice: c_int) -> c_int;
    }
}

/// Size the residency bitmap is computed at. Linux reports residency per
/// page; 4 KiB is the ubiquitous base page size (huge-page backed
/// mappings simply report runs of resident entries).
pub const PAGE_SIZE: usize = 4096;

enum Backing {
    /// A live `mmap` region (unix only). `ptr` is non-null and
    /// page-aligned; `len` > 0.
    #[cfg(unix)]
    Mapped { ptr: *mut u8, len: usize },
    /// Owned bytes: the non-unix fallback, and every empty file.
    Owned(Vec<u8>),
}

/// A read-only file mapping (see the module docs for the safety
/// argument). Dereferences to `&[u8]`.
pub struct Mmap {
    backing: Backing,
}

// SAFETY: the mapping is PROT_READ and the pointer/length never change
// after construction, so shared references from multiple threads only
// ever perform concurrent reads of immutable memory.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => "mapped",
            Backing::Owned(_) => "owned",
        };
        f.debug_struct("Mmap").field("kind", &kind).field("len", &self.len()).finish()
    }
}

impl Mmap {
    /// Maps `path` read-only. Empty files yield an empty (heap-backed)
    /// mapping. On non-unix targets this reads the file into memory.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::Io`] if the file cannot be opened, sized,
    /// or mapped.
    pub fn open(path: &Path) -> Result<Self, IndexError> {
        let file = File::open(path).map_err(|e| io_err("opening an index file to map", e))?;
        Self::from_file(&file)
    }

    /// Maps an already-open file read-only.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::Io`] if the file cannot be sized or mapped.
    #[cfg(unix)]
    pub fn from_file(file: &File) -> Result<Self, IndexError> {
        use std::os::unix::io::AsRawFd;
        let len = file
            .metadata()
            .map_err(|e| io_err("sizing an index file to map", e))?
            .len();
        let len = usize::try_from(len)
            .map_err(|_| IndexError::CorruptIndex { context: "index file exceeds usize" })?;
        if len == 0 {
            return Ok(Mmap { backing: Backing::Owned(Vec::new()) });
        }
        // SAFETY: fd is a valid open file descriptor, len > 0, and we
        // request a fresh private read-only mapping at a kernel-chosen
        // address. The result is checked against MAP_FAILED (-1).
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 || ptr.is_null() {
            let e = std::io::Error::last_os_error();
            return Err(io_err("mmapping an index file", e));
        }
        Ok(Mmap { backing: Backing::Mapped { ptr: ptr.cast(), len } })
    }

    /// Non-unix fallback: reads the file into an owned buffer.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::Io`] if the file cannot be read.
    #[cfg(not(unix))]
    pub fn from_file(file: &File) -> Result<Self, IndexError> {
        use std::io::Read;
        let mut buf = Vec::new();
        let mut f = file;
        f.read_to_end(&mut buf).map_err(|e| io_err("reading an index file", e))?;
        Ok(Mmap { backing: Backing::Owned(buf) })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; the borrow is tied to &self so it cannot outlive the
            // munmap in Drop.
            Backing::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr, *len)
            },
            Backing::Owned(v) => v.as_slice(),
        }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { len, .. } => *len,
            Backing::Owned(v) => v.len(),
        }
    }

    /// True when the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the bytes are served by a real file mapping (as opposed
    /// to the owned-buffer fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Owned(_) => false,
        }
    }

    /// Estimates how many bytes of the mapping are resident in the page
    /// cache right now, via `mincore(2)`. Returns `None` when the
    /// estimate is unavailable (owned backing, or the syscall failing),
    /// never an error — residency is advisory, used only for reporting.
    pub fn resident_bytes(&self) -> Option<u64> {
        self.resident_bytes_in(0, self.len())
    }

    /// [`Mmap::resident_bytes`] restricted to the byte span
    /// `[start, start + span_len)` — how shard-level reporting estimates
    /// one shard body's residency within a shared manifest mapping. The
    /// span is rounded outward to page boundaries (`mincore` granularity)
    /// and the estimate is capped at `span_len`.
    pub fn resident_bytes_in(&self, start: usize, span_len: usize) -> Option<u64> {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => {
                let end = start.checked_add(span_len)?.min(*len);
                let start = start.min(*len);
                if start >= end {
                    return Some(0);
                }
                let page_start = start - start % PAGE_SIZE;
                let probe_len = end - page_start;
                let pages = probe_len.div_ceil(PAGE_SIZE);
                let mut vec = vec![0u8; pages];
                // SAFETY: page_start is page-aligned within our own live
                // mapping, probe_len stays inside it, and vec holds one
                // byte per probed page, as mincore requires.
                let rc = unsafe {
                    sys::mincore(ptr.add(page_start).cast(), probe_len, vec.as_mut_ptr())
                };
                if rc != 0 {
                    return None;
                }
                let resident_pages = vec.iter().filter(|&&b| b & 1 == 1).count();
                Some(((resident_pages * PAGE_SIZE) as u64).min((end - start) as u64))
            }
            Backing::Owned(_) => None,
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: ptr/len came from a successful mmap and are
            // unmapped exactly once (Drop runs once; the struct is
            // neither Copy nor Clone).
            unsafe {
                sys::munmap(ptr.cast(), len);
            }
        }
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Asks the kernel to drop `path`'s pages from the page cache
/// (`posix_fadvise(POSIX_FADV_DONTNEED)`), so a subsequent mapping
/// starts cold. Best-effort: returns whether the advice call succeeded —
/// containers and some filesystems silently ignore it, so callers (the
/// bench harness) must treat "cold" measurements as advisory.
pub fn evict_from_page_cache(path: &Path) -> bool {
    #[cfg(unix)]
    {
        use std::os::unix::io::AsRawFd;
        let Ok(file) = File::open(path) else {
            return false;
        };
        let Ok(meta) = file.metadata() else {
            return false;
        };
        // Flush first so DONTNEED can actually drop clean pages.
        let _ = file.sync_all();
        let rc = unsafe {
            sys::posix_fadvise(
                file.as_raw_fd(),
                0,
                meta.len() as i64,
                sys::POSIX_FADV_DONTNEED,
            )
        };
        rc == 0
    }
    #[cfg(not(unix))]
    {
        let _ = path;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("iiu-mmap-{}-{name}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = tmp_file("contents", b"hello index");
        let map = Mmap::open(&path).unwrap();
        assert_eq!(map.as_slice(), b"hello index");
        assert_eq!(map.len(), 11);
        assert!(!map.is_empty());
        assert_eq!(&map[..5], b"hello");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = tmp_file("empty", b"");
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_slice(), b"");
        assert!(!map.is_mapped(), "empty files use the owned backing");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_typed_error() {
        let err = Mmap::open(Path::new("/nonexistent/iiu-definitely-missing")).unwrap_err();
        assert!(matches!(err, IndexError::Io { .. }), "{err:?}");
    }

    #[cfg(unix)]
    #[test]
    fn real_mapping_reports_mapped_and_some_residency() {
        let bytes: Vec<u8> = (0..100_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let path = tmp_file("resident", &bytes);
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_mapped());
        // Touch every page, then the residency estimate must be > 0 and
        // <= the mapping length.
        let sum: u64 = map.as_slice().iter().map(|&b| u64::from(b)).sum();
        assert!(sum > 0);
        let resident = map.resident_bytes().unwrap();
        assert!(resident > 0 && resident <= map.len() as u64, "resident = {resident}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mmap>();
    }

    #[test]
    fn evict_is_best_effort_and_does_not_panic() {
        let path = tmp_file("evict", &[0u8; 8192]);
        // Either outcome is fine; the call must simply not panic.
        let _ = evict_from_page_cache(&path);
        let _ = evict_from_page_cache(Path::new("/nonexistent/iiu-missing"));
        std::fs::remove_file(&path).ok();
    }
}
