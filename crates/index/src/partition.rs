//! Block partitioning of posting lists (paper §3.2).
//!
//! The IIU scheme chooses block boundaries with dynamic programming so that
//! the total storage cost `Σ C(B_i)` with
//! `C(B_i) = (b_dn + b_tf) · |B_i| + 96` bits is minimized, subject to a
//! `maxSize` limit on the block length that controls the space/parallelism
//! tradeoff (Fig. 14; the paper settles on `maxSize = 256`). A fixed-length
//! partitioner (Lucene-style 128-posting blocks) is provided as the
//! baseline.

use crate::bitpack::bits_for;
use crate::block::MAX_BLOCK_LEN;
use crate::codec::CodecId;
use crate::posting::PostingList;

/// The paper's default `maxSize` (§3.2, chosen from the Fig. 14 sweep).
pub const DEFAULT_MAX_SIZE: usize = 256;

/// Lucene's fixed block length, used by the baseline scheme.
pub const LUCENE_BLOCK_LEN: usize = 128;

/// Strategy for splitting a posting list into blocks.
///
/// # Example
///
/// ```
/// use iiu_index::{Partitioner, Posting, PostingList};
/// let list = PostingList::from_sorted(
///     (0..300u32).map(|i| Posting::new(i * 7, 1)).collect(),
/// );
/// let dynamic = Partitioner::dynamic(256).partition(&list);
/// assert_eq!(dynamic.iter().sum::<usize>(), 300);
/// let fixed = Partitioner::fixed(128).partition(&list);
/// assert_eq!(fixed, vec![128, 128, 44]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// Fixed-length blocks of the given size (static partitioning; the
    /// Lucene baseline uses 128).
    Fixed {
        /// Block length in postings.
        block_len: usize,
    },
    /// Cost-optimal dynamic programming partitioning with blocks of at most
    /// `max_size` postings.
    Dynamic {
        /// Upper bound on block length (the paper's `maxSize`).
        max_size: usize,
    },
}

impl Partitioner {
    /// Fixed-length partitioning.
    ///
    /// # Panics
    ///
    /// Panics if `block_len` is 0 or exceeds [`MAX_BLOCK_LEN`].
    pub fn fixed(block_len: usize) -> Self {
        assert!(
            (1..=MAX_BLOCK_LEN).contains(&block_len),
            "block length must be in 1..={MAX_BLOCK_LEN}"
        );
        Partitioner::Fixed { block_len }
    }

    /// Dynamic partitioning with the given `maxSize`.
    ///
    /// # Panics
    ///
    /// Panics if `max_size` is 0 or exceeds [`MAX_BLOCK_LEN`].
    pub fn dynamic(max_size: usize) -> Self {
        assert!(
            (1..=MAX_BLOCK_LEN).contains(&max_size),
            "maxSize must be in 1..={MAX_BLOCK_LEN}"
        );
        Partitioner::Dynamic { max_size }
    }

    /// Computes block lengths for `list` under the default codec's cost
    /// model (the paper's Eq. 3). The lengths sum to `list.len()`; an
    /// empty list yields an empty partition.
    pub fn partition(&self, list: &PostingList) -> Vec<usize> {
        self.partition_for(list, CodecId::default())
    }

    /// Computes block lengths for `list`, minimizing `codec`'s
    /// bits-per-posting model ([`crate::codec::BlockCodec::block_cost_bits`])
    /// instead of the hardcoded `(b_dn + b_tf)·|B| + 96`. Fixed
    /// partitioning ignores the model by construction.
    pub fn partition_for(&self, list: &PostingList, codec: CodecId) -> Vec<usize> {
        match *self {
            Partitioner::Fixed { block_len } => fixed_partition(list.len(), block_len),
            Partitioner::Dynamic { max_size } => dynamic_partition(list, max_size, codec),
        }
    }

    /// Total model cost in bits of the partition this strategy chooses for
    /// `list` under the default codec (Eq. 3 summed over blocks).
    pub fn cost_bits(&self, list: &PostingList) -> u64 {
        self.cost_bits_for(list, CodecId::default())
    }

    /// Total model cost in bits under `codec`'s cost model of the
    /// partition this strategy chooses for `list` *under that model*.
    pub fn cost_bits_for(&self, list: &PostingList, codec: CodecId) -> u64 {
        partition_cost_bits_for(list, &self.partition_for(list, codec), codec)
    }
}

impl Default for Partitioner {
    fn default() -> Self {
        Partitioner::Dynamic { max_size: DEFAULT_MAX_SIZE }
    }
}

/// Splits `n` postings into fixed-length chunks.
fn fixed_partition(n: usize, block_len: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(n / block_len + 1);
    let mut left = n;
    while left > 0 {
        let take = left.min(block_len);
        out.push(take);
        left -= take;
    }
    out
}

/// Cost-optimal partition by dynamic programming.
///
/// `cost[i]` is the minimal cost of the first `i` postings;
/// `cost[i] = min_{1 <= len <= maxSize} cost[i - len] + C(block of len ending at i)`.
/// Scanning the block start backwards maintains the running maxima of the
/// stored d-gaps and term frequencies incrementally, giving `O(n · maxSize)`
/// time and `O(n)` space.
fn dynamic_partition(list: &PostingList, max_size: usize, codec: CodecId) -> Vec<usize> {
    let postings = list.as_slice();
    let n = postings.len();
    if n == 0 {
        return Vec::new();
    }
    let ops = codec.ops();

    // gaps[k] = stored d-gap of posting k when it is *not* a block start.
    // (Block starts store 0; their docID comes from the skip value.)
    let mut gaps = vec![0u32; n];
    for k in 1..n {
        gaps[k] = postings[k].doc_id - postings[k - 1].doc_id;
    }

    let mut cost = vec![u64::MAX; n + 1];
    let mut parent = vec![0usize; n + 1];
    cost[0] = 0;

    for i in 1..=n {
        let lo = i.saturating_sub(max_size);
        // Block [j, i): scanning j from i-1 down to lo. Entering j-1 adds
        // posting j-1's tf and turns posting j's stored gap from 0 into
        // gaps[j].
        let mut gmax = 0u32;
        let mut tmax = postings[i - 1].tf;
        let mut j = i - 1;
        loop {
            let block_cost =
                ops.block_cost_bits((i - j) as u64, bits_for(gmax), bits_for(tmax));
            let c = cost[j].saturating_add(block_cost);
            if c < cost[i] {
                cost[i] = c;
                parent[i] = j;
            }
            if j == lo {
                break;
            }
            gmax = gmax.max(gaps[j]);
            tmax = tmax.max(postings[j - 1].tf);
            j -= 1;
        }
    }

    // Walk parents back to recover block lengths.
    let mut lens = Vec::new();
    let mut i = n;
    while i > 0 {
        let j = parent[i];
        lens.push(i - j);
        i = j;
    }
    lens.reverse();
    lens
}

/// Model cost in bits (Eq. 3, default codec) of an arbitrary partition of
/// `list`.
///
/// # Panics
///
/// Panics if the partition does not cover the list exactly.
pub fn partition_cost_bits(list: &PostingList, block_lens: &[usize]) -> u64 {
    partition_cost_bits_for(list, block_lens, CodecId::default())
}

/// Model cost in bits under `codec`'s cost model of an arbitrary partition
/// of `list`.
///
/// # Panics
///
/// Panics if the partition does not cover the list exactly.
pub fn partition_cost_bits_for(
    list: &PostingList,
    block_lens: &[usize],
    codec: CodecId,
) -> u64 {
    let postings = list.as_slice();
    assert_eq!(
        block_lens.iter().sum::<usize>(),
        postings.len(),
        "partition must cover the list exactly"
    );
    let ops = codec.ops();
    let mut total = 0u64;
    let mut start = 0usize;
    for &len in block_lens {
        let block = &postings[start..start + len];
        let mut gmax = 0u32;
        let mut tmax = 0u32;
        for (k, p) in block.iter().enumerate() {
            if k > 0 {
                gmax = gmax.max(p.doc_id - block[k - 1].doc_id);
            }
            tmax = tmax.max(p.tf);
        }
        total += ops.block_cost_bits(len as u64, bits_for(gmax), bits_for(tmax));
        start += len;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posting::Posting;
    use proptest::prelude::*;

    fn list_from_ids(ids: &[u32]) -> PostingList {
        PostingList::from_sorted(ids.iter().map(|&d| Posting::new(d, 1)).collect())
    }

    /// Brute-force optimal cost over all partitions (exponential; tiny n only).
    fn brute_force_cost(list: &PostingList, max_size: usize) -> u64 {
        fn rec(
            list: &PostingList,
            max_size: usize,
            from: usize,
            lens: &mut Vec<usize>,
            best: &mut u64,
        ) {
            let n = list.len();
            if from == n {
                let c = partition_cost_bits(list, lens);
                *best = (*best).min(c);
                return;
            }
            for len in 1..=max_size.min(n - from) {
                lens.push(len);
                rec(list, max_size, from + len, lens, best);
                lens.pop();
            }
        }
        let mut best = u64::MAX;
        rec(list, max_size, 0, &mut Vec::new(), &mut best);
        best
    }

    #[test]
    fn fixed_partition_lengths() {
        assert_eq!(fixed_partition(0, 128), Vec::<usize>::new());
        assert_eq!(fixed_partition(128, 128), vec![128]);
        assert_eq!(fixed_partition(129, 128), vec![128, 1]);
        assert_eq!(fixed_partition(300, 100), vec![100, 100, 100]);
    }

    #[test]
    fn dynamic_covers_list() {
        let mut ids = Vec::with_capacity(1000);
        let mut acc = 0u32;
        for i in 0..1000u32 {
            acc += i * 13 % 97 + 1;
            ids.push(acc);
        }
        let l = list_from_ids(&ids);
        let p = Partitioner::dynamic(256).partition(&l);
        assert_eq!(p.iter().sum::<usize>(), l.len());
        assert!(p.iter().all(|&len| (1..=256).contains(&len)));
    }

    #[test]
    fn dynamic_splits_around_outlier() {
        // A run of tiny gaps, one huge outlier gap, then tiny gaps again.
        // Dynamic partitioning should isolate the outlier so the small-gap
        // runs keep a narrow bitwidth.
        let mut ids: Vec<u32> = (0..64).collect();
        ids.extend((0..64u32).map(|i| (1 << 20) + i));
        let l = list_from_ids(&ids);
        let dynamic = Partitioner::dynamic(256).cost_bits(&l);
        let fixed = Partitioner::fixed(128).cost_bits(&l);
        assert!(
            dynamic < fixed,
            "dynamic ({dynamic} bits) should beat fixed ({fixed} bits) on outlier data"
        );
    }

    #[test]
    fn dynamic_matches_brute_force_small() {
        let cases: Vec<Vec<u32>> = vec![
            vec![0, 2, 11, 20, 38, 46],
            vec![7, 10, 15, 54, 72, 134, 170],
            vec![0, 1, 2, 3, 1000, 1001, 1002],
            vec![5],
            vec![0, 1 << 20],
        ];
        for ids in cases {
            let l = list_from_ids(&ids);
            let dp = Partitioner::dynamic(4).cost_bits(&l);
            let bf = brute_force_cost(&l, 4);
            assert_eq!(dp, bf, "DP must be optimal for {ids:?}");
        }
    }

    #[test]
    fn dynamic_never_worse_than_fixed_same_limit() {
        let ids: Vec<u32> = (0..500u32).map(|i| i * 31 + (i % 17) * 1000).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let l = list_from_ids(&sorted);
        for max in [16usize, 64, 128, 256] {
            let dp = Partitioner::dynamic(max).cost_bits(&l);
            let fx = Partitioner::fixed(max).cost_bits(&l);
            assert!(dp <= fx, "dynamic({max})={dp} must be <= fixed({max})={fx}");
        }
    }

    #[test]
    fn larger_max_size_never_costs_more() {
        let ids: Vec<u32> = (0..800u32).map(|i| i * 3 + (i / 100) * 50_000).collect();
        let l = list_from_ids(&ids);
        let mut prev = u64::MAX;
        for max in [16usize, 32, 64, 128, 256, 512] {
            let c = Partitioner::dynamic(max).cost_bits(&l);
            assert!(c <= prev, "cost must be non-increasing in maxSize");
            prev = c;
        }
    }

    #[test]
    fn codec_aware_partition_optimizes_its_own_model() {
        // A gap pattern where byte-aligned Stream-VByte wants different
        // boundaries than bit-exact packing: under its own model the
        // codec-aware DP must never lose to the BitPack-chosen partition.
        let ids: Vec<u32> = (0..600u32).map(|i| i * 3 + (i % 11) * 700).collect();
        let mut sorted = ids;
        sorted.sort_unstable();
        sorted.dedup();
        let l = list_from_ids(&sorted);
        for codec in CodecId::ALL {
            let own = Partitioner::dynamic(256).partition_for(&l, codec);
            let bp = Partitioner::dynamic(256).partition_for(&l, CodecId::BitPack);
            let own_cost = partition_cost_bits_for(&l, &own, codec);
            let bp_cost = partition_cost_bits_for(&l, &bp, codec);
            assert!(
                own_cost <= bp_cost,
                "{codec}: own partition {own_cost} bits > bitpack partition {bp_cost} bits"
            );
        }
    }

    #[test]
    #[should_panic(expected = "maxSize")]
    fn dynamic_rejects_zero() {
        let _ = Partitioner::dynamic(0);
    }

    #[test]
    fn empty_list_empty_partition() {
        let l = PostingList::new();
        assert!(Partitioner::default().partition(&l).is_empty());
        assert_eq!(Partitioner::default().cost_bits(&l), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_dp_optimal(ids in proptest::collection::btree_set(0u32..5000, 1..9)) {
            let ids: Vec<u32> = ids.into_iter().collect();
            let l = list_from_ids(&ids);
            let dp = Partitioner::dynamic(3).cost_bits(&l);
            let bf = brute_force_cost(&l, 3);
            prop_assert_eq!(dp, bf);
        }

        #[test]
        fn prop_partition_valid(ids in proptest::collection::btree_set(0u32..1 << 28, 1..400)) {
            let ids: Vec<u32> = ids.into_iter().collect();
            let l = list_from_ids(&ids);
            let p = Partitioner::dynamic(64).partition(&l);
            prop_assert_eq!(p.iter().sum::<usize>(), l.len());
            prop_assert!(p.iter().all(|&len| (1..=64).contains(&len)));
            // Encoding with the chosen partition must round-trip.
            let enc = crate::block::EncodedList::encode(&l, &p).unwrap();
            prop_assert_eq!(enc.model_bits(), partition_cost_bits(&l, &p));
            prop_assert_eq!(enc.decode_all(), l);
        }
    }
}
