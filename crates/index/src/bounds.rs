//! Per-block score upper bounds — the block-max metadata that lets the
//! software engines skip whole blocks that provably cannot enter the
//! current top-k (the block-max WAND/MaxScore family of optimizations).
//!
//! For every block of every posting list we record
//!
//! * `ub` — an upper bound on the Q16.16 fixed-point BM25 contribution of
//!   any posting in the block, and
//! * `max_tf` — the largest term frequency in the block (kept for
//!   inspection and as a cheap cross-check; `ub` is what pruning uses).
//!
//! # Why the bound is the exact per-block maximum
//!
//! The obvious closed-form bound `score(max_tf, min dl̄)` is *not* sound
//! for the fixed-point datapath: [`term_score_fixed`] truncates its
//! reciprocal, so the score is not exactly monotone in `tf` (at `dl̄ = 0`,
//! `s(tf) = tf · ⌊2³²/tf⌋` gives `s(5) < s(4)` in raw units). A bound that
//! can undershoot by even one raw unit would break the bit-exact
//! equivalence guarantee between pruned and exhaustive top-k. Instead we
//! evaluate the actual datapath for every posting at build time and keep
//! the per-block maximum — trivially a correct upper bound, and tighter
//! than any closed form. Build cost is one fixed-point division per
//! posting, paid once per index build.
//!
//! Bounds are derived data: every construction path
//! ([`crate::InvertedIndex::from_lists`]) recomputes them from the
//! postings, so v1/v2 index files load with bounds available and the v3
//! reader can cross-check the persisted section against the recomputation.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::block::EncodedList;
use crate::error::IndexError;
use crate::posting::Posting;
use crate::score::{term_score_fixed, Fixed};

/// Per-block score upper bounds for one posting list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ListBounds {
    ubs: Vec<Fixed>,
    max_tfs: Vec<u32>,
    max_ub: Fixed,
}

impl ListBounds {
    /// Computes bounds for a list laid out as `block_lens`-sized runs of
    /// `postings` (the same partition handed to [`EncodedList::encode`]).
    ///
    /// `idf_bar` is the list's term constant; `dl_bars` the per-document
    /// normalization table. Postings referencing documents beyond
    /// `dl_bars` contribute a zero-`dl̄` (i.e. maximal) score rather than
    /// panicking — [`crate::InvertedIndex::from_lists`] rejects such lists
    /// before bounds are ever computed.
    pub fn compute(
        postings: &[Posting],
        block_lens: &[usize],
        idf_bar: Fixed,
        dl_bars: &[Fixed],
    ) -> Self {
        let mut ubs = Vec::with_capacity(block_lens.len());
        let mut max_tfs = Vec::with_capacity(block_lens.len());
        let mut max_ub = Fixed::ZERO;
        let mut at = 0usize;
        for &len in block_lens {
            let block = &postings[at..(at + len).min(postings.len())];
            at += len;
            let mut ub = Fixed::ZERO;
            let mut max_tf = 0u32;
            for p in block {
                let dl = dl_bars.get(p.doc_id as usize).copied().unwrap_or(Fixed::ZERO);
                ub = ub.max(term_score_fixed(idf_bar, dl, p.tf));
                max_tf = max_tf.max(p.tf);
            }
            max_ub = max_ub.max(ub);
            ubs.push(ub);
            max_tfs.push(max_tf);
        }
        ListBounds { ubs, max_tfs, max_ub }
    }

    /// Recomputes bounds from an encoded list by decoding every block —
    /// the oracle [`crate::InvertedIndex::validate`] and the v3 file
    /// reader hold stored bounds against.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::CorruptIndex`] if a block fails to decode.
    pub fn recompute(
        list: &EncodedList,
        idf_bar: Fixed,
        dl_bars: &[Fixed],
    ) -> Result<Self, IndexError> {
        let mut ubs = Vec::with_capacity(list.num_blocks());
        let mut max_tfs = Vec::with_capacity(list.num_blocks());
        let mut max_ub = Fixed::ZERO;
        let mut block = Vec::new();
        for b in 0..list.num_blocks() {
            block.clear();
            list.try_decode_block_into(b, &mut block)?;
            let mut ub = Fixed::ZERO;
            let mut max_tf = 0u32;
            for p in &block {
                let dl = dl_bars.get(p.doc_id as usize).copied().unwrap_or(Fixed::ZERO);
                ub = ub.max(term_score_fixed(idf_bar, dl, p.tf));
                max_tf = max_tf.max(p.tf);
            }
            max_ub = max_ub.max(ub);
            ubs.push(ub);
            max_tfs.push(max_tf);
        }
        Ok(ListBounds { ubs, max_tfs, max_ub })
    }

    /// Constructs bounds from raw per-block values (the v3 file reader).
    pub fn from_raw_parts(ubs: Vec<Fixed>, max_tfs: Vec<u32>) -> Self {
        let max_ub = ubs.iter().copied().max().unwrap_or(Fixed::ZERO);
        ListBounds { ubs, max_tfs, max_ub }
    }

    /// Number of blocks covered.
    pub fn num_blocks(&self) -> usize {
        self.ubs.len()
    }

    /// Upper bound on the fixed-point score of any posting in block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn block_ub(&self, b: usize) -> Fixed {
        self.ubs[b]
    }

    /// All per-block upper bounds, in block order.
    pub fn ubs(&self) -> &[Fixed] {
        &self.ubs
    }

    /// All per-block maximum term frequencies, in block order.
    pub fn max_tfs(&self) -> &[u32] {
        &self.max_tfs
    }

    /// Upper bound over the whole list (max of the block bounds) — the
    /// term's MaxScore.
    pub fn max_ub(&self) -> Fixed {
        self.max_ub
    }

    /// Structural consistency with the list the bounds describe.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::CorruptIndex`] if the block counts disagree
    /// or the cached list-level maximum does not match the blocks.
    pub fn validate_against(&self, list: &EncodedList) -> Result<(), IndexError> {
        if self.ubs.len() != list.num_blocks() || self.max_tfs.len() != list.num_blocks() {
            return Err(IndexError::CorruptIndex { context: "score bounds block count" });
        }
        let max = self.ubs.iter().copied().max().unwrap_or(Fixed::ZERO);
        if max != self.max_ub {
            return Err(IndexError::CorruptIndex { context: "score bounds list maximum" });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioner;
    use crate::posting::PostingList;
    use proptest::prelude::*;

    fn fixture(
        pairs: &[(u32, u32)],
        max_size: usize,
    ) -> (PostingList, Vec<usize>, Vec<Fixed>) {
        let list =
            PostingList::from_sorted(pairs.iter().map(|&(d, t)| Posting::new(d, t)).collect());
        let lens = Partitioner::dynamic(max_size).partition(&list);
        let n = pairs.last().map_or(0, |&(d, _)| d + 1) as usize;
        let dl_bars: Vec<Fixed> =
            (0..n).map(|d| Fixed::from_f64(1.0 + (d % 7) as f64 * 0.3)).collect();
        (list, lens, dl_bars)
    }

    #[test]
    fn compute_and_recompute_agree() {
        let pairs: Vec<(u32, u32)> = (0..500).map(|i| (i * 3, 1 + i % 11)).collect();
        let (list, lens, dl_bars) = fixture(&pairs, 16);
        let idf = Fixed::from_f64(4.2);
        let direct = ListBounds::compute(list.as_slice(), &lens, idf, &dl_bars);
        let enc = EncodedList::encode(&list, &lens).unwrap();
        let via_decode = ListBounds::recompute(&enc, idf, &dl_bars).unwrap();
        assert_eq!(direct, via_decode);
        assert_eq!(direct.num_blocks(), enc.num_blocks());
        direct.validate_against(&enc).unwrap();
    }

    #[test]
    fn every_posting_is_below_its_block_bound() {
        let pairs: Vec<(u32, u32)> = (0..300).map(|i| (i * 2 + 1, 1 + (i * i) % 23)).collect();
        let (list, lens, dl_bars) = fixture(&pairs, 8);
        let idf = Fixed::from_f64(7.7);
        let bounds = ListBounds::compute(list.as_slice(), &lens, idf, &dl_bars);
        let mut at = 0usize;
        for (b, &len) in lens.iter().enumerate() {
            for p in &list.as_slice()[at..at + len] {
                let s = term_score_fixed(idf, dl_bars[p.doc_id as usize], p.tf);
                assert!(s <= bounds.block_ub(b), "posting above its block bound");
                assert!(s <= bounds.max_ub());
            }
            at += len;
        }
    }

    #[test]
    fn validate_against_catches_tampering() {
        let pairs: Vec<(u32, u32)> = (0..64).map(|i| (i, 1)).collect();
        let (list, lens, dl_bars) = fixture(&pairs, 8);
        let enc = EncodedList::encode(&list, &lens).unwrap();
        let good = ListBounds::compute(list.as_slice(), &lens, Fixed::ONE, &dl_bars);
        good.validate_against(&enc).unwrap();

        let mut bad = good.clone();
        bad.ubs.pop();
        assert!(matches!(
            bad.validate_against(&enc),
            Err(IndexError::CorruptIndex { context: "score bounds block count" })
        ));

        let mut bad = good.clone();
        bad.max_ub = bad.max_ub.saturating_add(Fixed::ONE);
        assert!(matches!(
            bad.validate_against(&enc),
            Err(IndexError::CorruptIndex { context: "score bounds list maximum" })
        ));
    }

    #[test]
    fn empty_list_has_no_blocks() {
        let b = ListBounds::compute(&[], &[], Fixed::ONE, &[]);
        assert_eq!(b.num_blocks(), 0);
        assert_eq!(b.max_ub(), Fixed::ZERO);
        assert_eq!(ListBounds::from_raw_parts(Vec::new(), Vec::new()), b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The exact-maximum bound dominates every per-posting score, and
        /// the two computation paths (raw postings vs decoded blocks)
        /// agree bit-for-bit.
        #[test]
        fn prop_bounds_are_sound_and_consistent(
            gaps in proptest::collection::vec((1u32..50, 1u32..200), 1..200),
            chunk in 1usize..32,
            idf_raw in 1u32..(200u32 << 16),
        ) {
            let mut doc = 0u32;
            let pairs: Vec<(u32, u32)> = gaps.iter().map(|&(g, t)| {
                doc += g;
                (doc, t)
            }).collect();
            let (list, lens, dl_bars) = fixture(&pairs, chunk);
            let idf = Fixed::from_raw(idf_raw);
            let bounds = ListBounds::compute(list.as_slice(), &lens, idf, &dl_bars);
            let enc = EncodedList::encode(&list, &lens).unwrap();
            prop_assert_eq!(&bounds, &ListBounds::recompute(&enc, idf, &dl_bars).unwrap());
            let mut at = 0usize;
            for (b, &len) in lens.iter().enumerate() {
                for p in &list.as_slice()[at..at + len] {
                    let s = term_score_fixed(idf, dl_bars[p.doc_id as usize], p.tf);
                    prop_assert!(s <= bounds.block_ub(b));
                }
                at += len;
            }
        }
    }
}
