//! Deterministic fault injection for serialized indexes.
//!
//! A production load path (the paper's `init(file invFile)` host primitive,
//! §4.1) must survive truncated, bit-flipped and adversarially spliced
//! inputs without panicking. This module generates such inputs
//! *deterministically* — every corruption is a pure function of a seed —
//! so a failure reproduces from its seed alone, and drives them through
//! [`crate::io::deserialize`] to produce a survival report.
//!
//! The generator is a SplitMix64 PRNG (Steele et al., "Fast splittable
//! pseudorandom number generators") so the crate needs no `rand`
//! dependency.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::error::IndexError;
use crate::index::InvertedIndex;
use crate::io::deserialize;

/// SplitMix64: tiny, seedable, statistically solid for fuzzing purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below() needs a positive bound");
        self.next_u64() % bound.max(1)
    }
}

/// One concrete corruption applied to a serialized index.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Corruption {
    /// Flip one bit.
    BitFlip {
        /// Byte offset of the flipped bit.
        byte: usize,
        /// Bit position within the byte (0..8).
        bit: u8,
    },
    /// Cut the file to a prefix.
    Truncate {
        /// New length in bytes.
        len: usize,
    },
    /// Overwrite a run of bytes with pseudo-random content.
    Splice {
        /// Start offset of the overwritten run.
        at: usize,
        /// Length of the run.
        len: usize,
    },
    /// Overwrite 4 bytes with an adversarial length-like value — the
    /// mutation bit-packed formats are most sensitive to (huge counts,
    /// off-by-one sizes, sign-bit patterns).
    LengthField {
        /// Byte offset of the 32-bit field.
        at: usize,
        /// The value written (little endian).
        value: u32,
    },
}

/// Deterministically derives one corruption from `seed` and applies it to a
/// copy of `bytes`. Returns the corrupted bytes and a description of what
/// was done. Empty input is returned unchanged as a zero-length truncation;
/// any other input is guaranteed to come back byte-different (a splice or
/// length-field write that happens to reproduce the original bytes falls
/// back to a bit flip, so no trial of a campaign is wasted on a no-op).
pub fn corrupt(bytes: &[u8], seed: u64) -> (Vec<u8>, Corruption) {
    let mut rng = SplitMix64::new(seed);
    let out = bytes.to_vec();
    if out.is_empty() {
        return (out, Corruption::Truncate { len: 0 });
    }
    let len = out.len() as u64;
    let (out, kind) = apply(&mut rng, out, len);
    if out.len() == bytes.len() && out == bytes {
        let mut out = out;
        let byte = rng.below(len) as usize;
        let bit = rng.below(8) as u8;
        out[byte] ^= 1 << bit;
        return (out, Corruption::BitFlip { byte, bit });
    }
    (out, kind)
}

fn apply(rng: &mut SplitMix64, mut out: Vec<u8>, len: u64) -> (Vec<u8>, Corruption) {
    match rng.below(4) {
        0 => {
            let byte = rng.below(len) as usize;
            let bit = (rng.below(8)) as u8;
            out[byte] ^= 1 << bit;
            (out, Corruption::BitFlip { byte, bit })
        }
        1 => {
            let cut = rng.below(len) as usize;
            out.truncate(cut);
            (out, Corruption::Truncate { len: cut })
        }
        2 => {
            let at = rng.below(len) as usize;
            let run = 1 + rng.below(64.min(len)) as usize;
            let end = (at + run).min(out.len());
            for b in &mut out[at..end] {
                *b = (rng.next_u64() & 0xff) as u8;
            }
            (out, Corruption::Splice { at, len: end - at })
        }
        _ => {
            // Length-like fields are 4 or 8 bytes; hitting any aligned or
            // unaligned offset with an adversarial 32-bit value exercises
            // the count/offset sanity checks.
            let at = rng.below(len) as usize;
            let value = match rng.below(6) {
                0 => u32::MAX,
                1 => u32::MAX - 1,
                2 => 1 << 31,
                3 => (len as u32).wrapping_add(1),
                4 => 0,
                _ => (rng.next_u64() & 0xffff_ffff) as u32,
            };
            let end = (at + 4).min(out.len());
            let le = value.to_le_bytes();
            out[at..end].copy_from_slice(&le[..end - at]);
            (out, Corruption::LengthField { at, value })
        }
    }
}

/// Deterministic shard-level fault plan for chaos campaigns against a
/// sharded engine.
///
/// Every decision is a pure function of `(seed, query sequence, shard)`,
/// so a chaos run reproduces exactly from its plan — the same property
/// [`corrupt`] gives byte-level campaigns. The plan itself injects
/// nothing; the sharded engine consults it at fan-out and turns draws
/// into real faults (a panic inside the shard closure, a sleep past the
/// pool deadline, a worker kill).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardChaosPlan {
    /// Probability a given `(seq, shard)` execution panics.
    pub panic_rate: f64,
    /// Probability a given `(seq, shard)` execution stalls for [`Self::stall`].
    pub stall_rate: f64,
    /// How long a stalled execution sleeps — set it past the pool's shard
    /// deadline to exercise the wedged path.
    pub stall: std::time::Duration,
    /// Deterministic panic window `(seq_start, seq_end, shard)`: every
    /// execution of `shard` with `seq_start <= seq < seq_end` panics.
    /// Long enough a window trips shard quarantine on purpose.
    pub panic_burst: Option<(u64, u64, usize)>,
    /// Worker assassinations: at each `(seq, shard)` the engine kills
    /// that shard's worker thread before fan-out, exercising dead-worker
    /// detection and respawn.
    pub kills: Vec<(u64, usize)>,
    /// Seed for the rate draws.
    pub seed: u64,
}

impl ShardChaosPlan {
    /// A plan that injects nothing (the default).
    pub const NONE: ShardChaosPlan = ShardChaosPlan {
        panic_rate: 0.0,
        stall_rate: 0.0,
        stall: std::time::Duration::ZERO,
        panic_burst: None,
        kills: Vec::new(),
        seed: 0,
    };

    /// Whether this plan can ever inject a fault.
    pub fn is_quiet(&self) -> bool {
        self.panic_rate <= 0.0
            && self.stall_rate <= 0.0
            && self.panic_burst.is_none()
            && self.kills.is_empty()
    }

    fn draw(&self, seq: u64, shard: usize, salt: u64) -> f64 {
        let mut rng = SplitMix64::new(
            self.seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (shard as u64) ^ salt,
        );
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether the execution of `shard` for query `seq` must panic.
    pub fn sabotage_panic(&self, seq: u64, shard: usize) -> bool {
        if let Some((start, end, s)) = self.panic_burst {
            if shard == s && (start..end).contains(&seq) {
                return true;
            }
        }
        self.panic_rate > 0.0 && self.draw(seq, shard, 0xFA11) < self.panic_rate
    }

    /// How long the execution of `shard` for query `seq` must stall, if
    /// at all.
    pub fn sabotage_stall(&self, seq: u64, shard: usize) -> Option<std::time::Duration> {
        (self.stall_rate > 0.0 && self.draw(seq, shard, 0x57A11) < self.stall_rate)
            .then_some(self.stall)
    }

    /// The shard whose worker must be killed before query `seq` fans
    /// out, if any.
    pub fn kill(&self, seq: u64) -> Option<usize> {
        self.kills.iter().find(|(at, _)| *at == seq).map(|&(_, s)| s)
    }
}

impl Default for ShardChaosPlan {
    fn default() -> Self {
        Self::NONE
    }
}

/// Outcome tally of a deterministic corruption campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SurvivalReport {
    /// Corruptions attempted.
    pub trials: u64,
    /// Loads rejected with a typed [`IndexError`].
    pub typed_errors: u64,
    /// Rejections specifically via [`IndexError::ChecksumMismatch`].
    pub checksum_rejections: u64,
    /// Loads that succeeded and decoded to an index deep-equal to the
    /// original (the corruption was a semantic no-op — possible only in
    /// regions a v1 file leaves unchecksummed, never byte-identity, which
    /// [`corrupt`] rules out).
    pub accepted_equal: u64,
    /// Loads that succeeded but decoded to a *different* index — silent
    /// corruption. Must stay 0 for the format to be considered hardened.
    pub accepted_divergent: u64,
}

impl SurvivalReport {
    /// Whether every corruption was either rejected with a typed error or
    /// proved to be a semantic no-op.
    pub fn survived(&self) -> bool {
        self.accepted_divergent == 0 && self.trials == self.typed_errors + self.accepted_equal
    }
}

/// Outcome tally of a corruption campaign against the zero-copy mapped
/// load path, which splits rejection across *two* moments: eager checks
/// at [`crate::storage::map_index`] time and lazy per-record CRCs on
/// first payload touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MappedSurvivalReport {
    /// Corruptions attempted.
    pub trials: u64,
    /// Loads rejected with a typed [`IndexError`] at open (magic, header
    /// CRC, doc-table CRC, bounds-section CRC, structural frames,
    /// truncation, or an unmappable file).
    pub open_rejections: u64,
    /// Loads that opened clean but whose full-index sweep (per-term
    /// [`InvertedIndex::verify_term`][crate::index::InvertedIndex::verify_term]
    /// plus decoding every block) hit a typed error — the lazy-CRC
    /// contract catching payload corruption on first touch.
    pub touch_rejections: u64,
    /// Of [`Self::touch_rejections`], those surfacing specifically as
    /// [`IndexError::ChecksumMismatch`].
    pub touch_checksum_rejections: u64,
    /// Loads that opened, swept clean, and deep-compared equal to the
    /// original — possible only for corruption in bytes the mapped path
    /// deliberately does not hash (the whole-file footer CRC; see the
    /// [`crate::storage`] module docs for the trade).
    pub accepted_equal: u64,
    /// Loads that swept clean but decoded to a *different* index —
    /// silent corruption. Must stay 0.
    pub accepted_divergent: u64,
}

impl MappedSurvivalReport {
    /// Whether every corruption was rejected (at open or on first touch)
    /// or proved to be a semantic no-op.
    pub fn survived(&self) -> bool {
        self.accepted_divergent == 0
            && self.trials == self.open_rejections + self.touch_rejections + self.accepted_equal
    }
}

/// Sweeps every term of a mapped index through the lazily-verified path:
/// `verify_term` plus a decode of every block. Returns the first typed
/// error, i.e. the moment a query would have surfaced the corruption.
fn sweep_mapped(idx: &InvertedIndex) -> Result<(), IndexError> {
    let mut out = Vec::new();
    for id in 0..idx.num_terms() as u32 {
        idx.verify_term(id)?;
        let list = idx.encoded_list(id);
        for b in 0..list.num_blocks() {
            out.clear();
            list.try_decode_block_into(b, &mut out)?;
        }
    }
    Ok(())
}

/// Runs `trials` deterministic corruptions of `bytes` through the mapped
/// loader [`crate::storage::map_index`], writing each mutation to
/// `scratch` and — when the open succeeds — sweeping every term through
/// the lazy-CRC decode path before deep-comparing against `original`.
///
/// Panics inside the load or sweep are not caught: under `cargo test` a
/// panic is the failure signal. Only scratch-file I/O errors propagate.
///
/// # Errors
///
/// Returns the underlying error if `scratch` cannot be (re)written.
pub fn mapped_survival_report(
    original: &InvertedIndex,
    bytes: &[u8],
    trials: u64,
    seed_base: u64,
    scratch: &std::path::Path,
) -> std::io::Result<MappedSurvivalReport> {
    let mut report = MappedSurvivalReport { trials, ..Default::default() };
    for t in 0..trials {
        let (mutated, _what) = corrupt(bytes, seed_base + t);
        std::fs::write(scratch, &mutated)?;
        match crate::storage::map_index(scratch) {
            Err(_) => report.open_rejections += 1,
            Ok(mapped) => match sweep_mapped(&mapped) {
                Err(e) => {
                    report.touch_rejections += 1;
                    if matches!(e, IndexError::ChecksumMismatch { .. }) {
                        report.touch_checksum_rejections += 1;
                    }
                }
                Ok(()) => {
                    if mapped == *original {
                        report.accepted_equal += 1;
                    } else {
                        report.accepted_divergent += 1;
                    }
                }
            },
        }
    }
    std::fs::remove_file(scratch).ok();
    Ok(report)
}

/// [`mapped_survival_report`] for shard manifests via
/// [`crate::storage::map_sharded`]. Manifests store no bounds section,
/// so every shard payload is decoded (and its record CRC verified) at
/// open — payload corruption lands in `open_rejections`, not
/// `touch_rejections`; the post-open sweep is retained as a no-panic
/// check over whatever loaded.
///
/// # Errors
///
/// Returns the underlying error if `scratch` cannot be (re)written.
pub fn mapped_sharded_survival_report(
    original: &crate::shard::ShardedIndex,
    bytes: &[u8],
    trials: u64,
    seed_base: u64,
    scratch: &std::path::Path,
) -> std::io::Result<MappedSurvivalReport> {
    let mut report = MappedSurvivalReport { trials, ..Default::default() };
    for t in 0..trials {
        let (mutated, _what) = corrupt(bytes, seed_base + t);
        std::fs::write(scratch, &mutated)?;
        match crate::storage::map_sharded(scratch) {
            Err(_) => report.open_rejections += 1,
            Ok(mapped) => {
                match mapped.shards().iter().try_for_each(sweep_mapped) {
                    Err(e) => {
                        report.touch_rejections += 1;
                        if matches!(e, IndexError::ChecksumMismatch { .. }) {
                            report.touch_checksum_rejections += 1;
                        }
                    }
                    Ok(()) => {
                        if mapped == *original {
                            report.accepted_equal += 1;
                        } else {
                            report.accepted_divergent += 1;
                        }
                    }
                }
            }
        }
    }
    std::fs::remove_file(scratch).ok();
    Ok(report)
}

/// Runs `trials` deterministic corruptions (seeds `seed_base..seed_base +
/// trials`) of `bytes` through [`deserialize`], comparing any successful
/// load against `original`.
///
/// Panics inside `deserialize` are *not* caught here: under `cargo test` a
/// panic is the failure signal we want, and the CLI harness wraps this in
/// `catch_unwind` per trial.
pub fn survival_report(
    original: &InvertedIndex,
    bytes: &[u8],
    trials: u64,
    seed_base: u64,
) -> SurvivalReport {
    let mut report = SurvivalReport { trials, ..Default::default() };
    for t in 0..trials {
        let (mutated, _what) = corrupt(bytes, seed_base + t);
        match deserialize(&mutated) {
            Err(e) => {
                report.typed_errors += 1;
                if matches!(e, IndexError::ChecksumMismatch { .. }) {
                    report.checksum_rejections += 1;
                }
            }
            Ok(idx) => {
                if idx == *original {
                    report.accepted_equal += 1;
                } else {
                    report.accepted_divergent += 1;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuildOptions, IndexBuilder};
    use crate::io::serialize;

    fn sample() -> InvertedIndex {
        let mut b = IndexBuilder::new(BuildOptions::default());
        b.add_document("the quick brown fox jumps over the lazy dog");
        b.add_document("pack my box with five dozen liquor jugs");
        b.add_document("the five boxing wizards jump quickly");
        b.build()
    }

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), xs.len(), "16 draws should not collide");
    }

    #[test]
    fn corrupt_is_deterministic() {
        let bytes = serialize(&sample()).expect("serialize");
        for seed in 0..50 {
            let (a, ka) = corrupt(&bytes, seed);
            let (b, kb) = corrupt(&bytes, seed);
            assert_eq!(a, b);
            assert_eq!(ka, kb);
        }
    }

    #[test]
    fn corrupt_changes_or_truncates() {
        let bytes = serialize(&sample()).expect("serialize");
        let mut changed = 0;
        for seed in 0..200 {
            let (m, _) = corrupt(&bytes, seed);
            if m != bytes {
                changed += 1;
            }
        }
        // The bit-flip fallback guarantees every corruption of a non-empty
        // file actually changes the bytes.
        assert_eq!(changed, 200, "only {changed}/200 corruptions changed the bytes");
    }

    #[test]
    fn survival_report_on_hardened_format() {
        let idx = sample();
        let bytes = serialize(&idx).expect("serialize");
        let report = survival_report(&idx, &bytes, 300, 0xfa_017);
        assert!(report.survived(), "unsurvived: {report:?}");
        assert!(report.typed_errors > 0);
        assert!(report.checksum_rejections > 0, "checksums never fired: {report:?}");
    }

    #[test]
    fn shard_chaos_plan_is_deterministic_and_respects_rates() {
        let plan = ShardChaosPlan {
            panic_rate: 0.05,
            stall_rate: 0.02,
            stall: std::time::Duration::from_millis(5),
            panic_burst: Some((100, 110, 2)),
            kills: vec![(7, 1)],
            seed: 0xC0_FFEE,
        };
        assert!(!plan.is_quiet());
        let mut panics = 0u32;
        let mut stalls = 0u32;
        for seq in 0..4_000u64 {
            for shard in 0..4 {
                // Deterministic: the same draw twice agrees.
                assert_eq!(plan.sabotage_panic(seq, shard), plan.sabotage_panic(seq, shard));
                if plan.sabotage_panic(seq, shard) {
                    panics += 1;
                }
                if plan.sabotage_stall(seq, shard).is_some() {
                    stalls += 1;
                }
            }
        }
        // 16 000 draws at 5% / 2%: expect ~800 / ~320, generous bands.
        assert!((400..1600).contains(&panics), "panic draws off-rate: {panics}");
        assert!((120..700).contains(&stalls), "stall draws off-rate: {stalls}");
        // The burst window always panics its shard, and only its shard.
        for seq in 100..110 {
            assert!(plan.sabotage_panic(seq, 2));
        }
        assert!(!plan.sabotage_panic(99, 2) || plan.panic_rate > 0.0);
        assert_eq!(plan.kill(7), Some(1));
        assert_eq!(plan.kill(8), None);
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let plan = ShardChaosPlan::NONE;
        assert!(plan.is_quiet());
        for seq in 0..500 {
            for shard in 0..8 {
                assert!(!plan.sabotage_panic(seq, shard));
                assert!(plan.sabotage_stall(seq, shard).is_none());
            }
            assert_eq!(plan.kill(seq), None);
        }
    }

    #[test]
    fn bounds_section_faults_surface_typed_errors() {
        // Every corruption landing in the v3 score-bounds section must be
        // rejected with a typed error — a silently-wrong bound would make
        // pruned top-k drop valid results. The file tail is
        // [bounds content][bounds crc 4][footer 4].
        use crate::io::deserialize;
        let idx = sample();
        let bytes = serialize(&idx).expect("serialize");
        let bounds_len: usize = idx.bounds().iter().map(|b| 8 + b.num_blocks() * 8).sum();
        let n = bytes.len();
        let start = n - 8 - bounds_len;
        for byte in start..n {
            for bit in [0u8, 3, 7] {
                let mut m = bytes.clone();
                m[byte] ^= 1 << bit;
                assert!(
                    deserialize(&m).is_err(),
                    "bounds-section flip at byte {byte} bit {bit} was accepted"
                );
            }
        }
        for cut in start..n {
            assert!(
                deserialize(&bytes[..cut]).is_err(),
                "truncation inside bounds section at {cut} was accepted"
            );
        }
    }
}
