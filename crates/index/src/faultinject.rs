//! Deterministic fault injection for serialized indexes.
//!
//! A production load path (the paper's `init(file invFile)` host primitive,
//! §4.1) must survive truncated, bit-flipped and adversarially spliced
//! inputs without panicking. This module generates such inputs
//! *deterministically* — every corruption is a pure function of a seed —
//! so a failure reproduces from its seed alone, and drives them through
//! [`crate::io::deserialize`] to produce a survival report.
//!
//! The generator is a SplitMix64 PRNG (Steele et al., "Fast splittable
//! pseudorandom number generators") so the crate needs no `rand`
//! dependency.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::error::IndexError;
use crate::index::InvertedIndex;
use crate::io::deserialize;

/// SplitMix64: tiny, seedable, statistically solid for fuzzing purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below() needs a positive bound");
        self.next_u64() % bound.max(1)
    }
}

/// One concrete corruption applied to a serialized index.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Corruption {
    /// Flip one bit.
    BitFlip {
        /// Byte offset of the flipped bit.
        byte: usize,
        /// Bit position within the byte (0..8).
        bit: u8,
    },
    /// Cut the file to a prefix.
    Truncate {
        /// New length in bytes.
        len: usize,
    },
    /// Overwrite a run of bytes with pseudo-random content.
    Splice {
        /// Start offset of the overwritten run.
        at: usize,
        /// Length of the run.
        len: usize,
    },
    /// Overwrite 4 bytes with an adversarial length-like value — the
    /// mutation bit-packed formats are most sensitive to (huge counts,
    /// off-by-one sizes, sign-bit patterns).
    LengthField {
        /// Byte offset of the 32-bit field.
        at: usize,
        /// The value written (little endian).
        value: u32,
    },
}

/// Deterministically derives one corruption from `seed` and applies it to a
/// copy of `bytes`. Returns the corrupted bytes and a description of what
/// was done. Empty input is returned unchanged as a zero-length truncation;
/// any other input is guaranteed to come back byte-different (a splice or
/// length-field write that happens to reproduce the original bytes falls
/// back to a bit flip, so no trial of a campaign is wasted on a no-op).
pub fn corrupt(bytes: &[u8], seed: u64) -> (Vec<u8>, Corruption) {
    let mut rng = SplitMix64::new(seed);
    let out = bytes.to_vec();
    if out.is_empty() {
        return (out, Corruption::Truncate { len: 0 });
    }
    let len = out.len() as u64;
    let (out, kind) = apply(&mut rng, out, len);
    if out.len() == bytes.len() && out == bytes {
        let mut out = out;
        let byte = rng.below(len) as usize;
        let bit = rng.below(8) as u8;
        out[byte] ^= 1 << bit;
        return (out, Corruption::BitFlip { byte, bit });
    }
    (out, kind)
}

fn apply(rng: &mut SplitMix64, mut out: Vec<u8>, len: u64) -> (Vec<u8>, Corruption) {
    match rng.below(4) {
        0 => {
            let byte = rng.below(len) as usize;
            let bit = (rng.below(8)) as u8;
            out[byte] ^= 1 << bit;
            (out, Corruption::BitFlip { byte, bit })
        }
        1 => {
            let cut = rng.below(len) as usize;
            out.truncate(cut);
            (out, Corruption::Truncate { len: cut })
        }
        2 => {
            let at = rng.below(len) as usize;
            let run = 1 + rng.below(64.min(len)) as usize;
            let end = (at + run).min(out.len());
            for b in &mut out[at..end] {
                *b = (rng.next_u64() & 0xff) as u8;
            }
            (out, Corruption::Splice { at, len: end - at })
        }
        _ => {
            // Length-like fields are 4 or 8 bytes; hitting any aligned or
            // unaligned offset with an adversarial 32-bit value exercises
            // the count/offset sanity checks.
            let at = rng.below(len) as usize;
            let value = match rng.below(6) {
                0 => u32::MAX,
                1 => u32::MAX - 1,
                2 => 1 << 31,
                3 => (len as u32).wrapping_add(1),
                4 => 0,
                _ => (rng.next_u64() & 0xffff_ffff) as u32,
            };
            let end = (at + 4).min(out.len());
            let le = value.to_le_bytes();
            out[at..end].copy_from_slice(&le[..end - at]);
            (out, Corruption::LengthField { at, value })
        }
    }
}

/// Outcome tally of a deterministic corruption campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SurvivalReport {
    /// Corruptions attempted.
    pub trials: u64,
    /// Loads rejected with a typed [`IndexError`].
    pub typed_errors: u64,
    /// Rejections specifically via [`IndexError::ChecksumMismatch`].
    pub checksum_rejections: u64,
    /// Loads that succeeded and decoded to an index deep-equal to the
    /// original (the corruption was a semantic no-op — possible only in
    /// regions a v1 file leaves unchecksummed, never byte-identity, which
    /// [`corrupt`] rules out).
    pub accepted_equal: u64,
    /// Loads that succeeded but decoded to a *different* index — silent
    /// corruption. Must stay 0 for the format to be considered hardened.
    pub accepted_divergent: u64,
}

impl SurvivalReport {
    /// Whether every corruption was either rejected with a typed error or
    /// proved to be a semantic no-op.
    pub fn survived(&self) -> bool {
        self.accepted_divergent == 0
            && self.trials == self.typed_errors + self.accepted_equal
    }
}

/// Runs `trials` deterministic corruptions (seeds `seed_base..seed_base +
/// trials`) of `bytes` through [`deserialize`], comparing any successful
/// load against `original`.
///
/// Panics inside `deserialize` are *not* caught here: under `cargo test` a
/// panic is the failure signal we want, and the CLI harness wraps this in
/// `catch_unwind` per trial.
pub fn survival_report(
    original: &InvertedIndex,
    bytes: &[u8],
    trials: u64,
    seed_base: u64,
) -> SurvivalReport {
    let mut report = SurvivalReport { trials, ..Default::default() };
    for t in 0..trials {
        let (mutated, _what) = corrupt(bytes, seed_base + t);
        match deserialize(&mutated) {
            Err(e) => {
                report.typed_errors += 1;
                if matches!(e, IndexError::ChecksumMismatch { .. }) {
                    report.checksum_rejections += 1;
                }
            }
            Ok(idx) => {
                if idx == *original {
                    report.accepted_equal += 1;
                } else {
                    report.accepted_divergent += 1;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuildOptions, IndexBuilder};
    use crate::io::serialize;

    fn sample() -> InvertedIndex {
        let mut b = IndexBuilder::new(BuildOptions::default());
        b.add_document("the quick brown fox jumps over the lazy dog");
        b.add_document("pack my box with five dozen liquor jugs");
        b.add_document("the five boxing wizards jump quickly");
        b.build()
    }

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), xs.len(), "16 draws should not collide");
    }

    #[test]
    fn corrupt_is_deterministic() {
        let bytes = serialize(&sample()).expect("serialize");
        for seed in 0..50 {
            let (a, ka) = corrupt(&bytes, seed);
            let (b, kb) = corrupt(&bytes, seed);
            assert_eq!(a, b);
            assert_eq!(ka, kb);
        }
    }

    #[test]
    fn corrupt_changes_or_truncates() {
        let bytes = serialize(&sample()).expect("serialize");
        let mut changed = 0;
        for seed in 0..200 {
            let (m, _) = corrupt(&bytes, seed);
            if m != bytes {
                changed += 1;
            }
        }
        // The bit-flip fallback guarantees every corruption of a non-empty
        // file actually changes the bytes.
        assert_eq!(changed, 200, "only {changed}/200 corruptions changed the bytes");
    }

    #[test]
    fn survival_report_on_hardened_format() {
        let idx = sample();
        let bytes = serialize(&idx).expect("serialize");
        let report = survival_report(&idx, &bytes, 300, 0xfa_017);
        assert!(report.survived(), "unsurvived: {report:?}");
        assert!(report.typed_errors > 0);
        assert!(report.checksum_rejections > 0, "checksums never fired: {report:?}");
    }

    #[test]
    fn bounds_section_faults_surface_typed_errors() {
        // Every corruption landing in the v3 score-bounds section must be
        // rejected with a typed error — a silently-wrong bound would make
        // pruned top-k drop valid results. The file tail is
        // [bounds content][bounds crc 4][footer 4].
        use crate::io::deserialize;
        let idx = sample();
        let bytes = serialize(&idx).expect("serialize");
        let bounds_len: usize =
            idx.bounds().iter().map(|b| 8 + b.num_blocks() * 8).sum();
        let n = bytes.len();
        let start = n - 8 - bounds_len;
        for byte in start..n {
            for bit in [0u8, 3, 7] {
                let mut m = bytes.clone();
                m[byte] ^= 1 << bit;
                assert!(
                    deserialize(&m).is_err(),
                    "bounds-section flip at byte {byte} bit {bit} was accepted"
                );
            }
        }
        for cut in start..n {
            assert!(
                deserialize(&bytes[..cut]).is_err(),
                "truncation inside bounds section at {cut} was accepted"
            );
        }
    }
}
