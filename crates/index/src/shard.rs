//! Document-space sharding: round-robin partitioning of a corpus into N
//! sub-indexes that score identically to the whole.
//!
//! A [`ShardedIndex`] splits the docID space round-robin: global document
//! `d` lives in shard `d % n` under the shard-local identifier `d / n`.
//! The mapping is pure arithmetic in both directions (no stored table),
//! and because it is monotone within a shard, every per-shard posting
//! list stays sorted and delta-encodes exactly as before — random
//! (round-robin) document partitioning is known to preserve compression
//! and balance load across shards.
//!
//! Two properties make shard results merge *bit-identically* with the
//! unsharded engine:
//!
//! 1. every shard is built with the **global** collection statistics
//!    (`avgdl` and per-term `idf̄`) via
//!    [`InvertedIndex::from_lists_with_stats`], so a document's BM25
//!    score is the same Q16.16 value no matter which shard scores it;
//! 2. every shard carries the **same dictionary** (terms absent from a
//!    shard get an empty posting list), so a term resolves to the same
//!    [`TermId`] everywhere and per-shard block bounds line up with the
//!    global term table.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::error::IndexError;
use crate::index::{InvertedIndex, TermId};
use crate::partition::Partitioner;
use crate::posting::{DocId, Posting, PostingList};

/// Floor on the shard partitioner's block-length parameter, so a
/// degenerate parent (or a huge shard count) cannot produce one-posting
/// blocks whose metadata outweighs their payload.
const MIN_SHARD_BLOCK_LEN: usize = 8;

/// The partitioner shard lists are encoded with: the parent's strategy
/// with its block-length parameter tightened to the parent's *observed*
/// postings-per-block granularity.
///
/// Round-robin subsampling smooths out both the gap burstiness and the
/// score outliers that make the dynamic partitioner cut the parent's
/// lists into short blocks, so re-partitioning a shard list with the
/// parent's own `max_size` yields blocks several times longer — and a
/// block is the unit of block-max skipping, so coarser blocks directly
/// erode pruning. Capping shard blocks at the parent's observed average
/// keeps the skip granularity (postings priced per bound check)
/// comparable to the unsharded index.
fn shard_partitioner(index: &InvertedIndex) -> Partitioner {
    match index.partitioner() {
        p @ Partitioner::Fixed { .. } => p,
        Partitioner::Dynamic { max_size } => {
            let stats = index.size_stats();
            let avg = if stats.num_blocks > 0 {
                stats.postings.div_ceil(stats.num_blocks) as usize
            } else {
                max_size
            };
            Partitioner::dynamic(avg.clamp(MIN_SHARD_BLOCK_LEN.min(max_size), max_size))
        }
    }
}

/// Per-shard load summary for operators (`iiu inspect`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardBalance {
    /// Shard index.
    pub shard: usize,
    /// Documents assigned to this shard.
    pub docs: u64,
    /// Postings across all of this shard's lists.
    pub postings: u64,
    /// Encoded blocks across all of this shard's lists.
    pub blocks: u64,
    /// Lists with at least one posting (the rest are dictionary-only
    /// placeholders keeping TermIds uniform across shards).
    pub nonempty_lists: u64,
    /// Lists whose block score bounds cover at least one block — always
    /// equal to `nonempty_lists` on a well-formed shard.
    pub bounded_lists: u64,
}

/// A corpus split round-robin across N shard sub-indexes.
///
/// Built with [`ShardedIndex::split`]; reassembled (exactly) with
/// [`ShardedIndex::merge`]. Each shard is a full [`InvertedIndex`] over
/// remapped shard-local docIDs, sharing the global dictionary and global
/// scoring constants.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedIndex {
    shards: Vec<InvertedIndex>,
    n_docs: u64,
    /// The partitioner of the index this was split from. Shard lists are
    /// encoded with a tightened partitioner (see [`shard_partitioner`]);
    /// [`merge`](Self::merge) re-encodes with this one so the round trip
    /// reproduces the source index exactly.
    parent_partitioner: Partitioner,
}

impl ShardedIndex {
    /// Splits `index` into `n` round-robin document shards.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::CorruptIndex`] if `n` is zero or a shard
    /// fails to encode (which would indicate corruption in the source
    /// index, since splitting only shrinks lists).
    pub fn split(index: &InvertedIndex, n: usize) -> Result<Self, IndexError> {
        if n == 0 {
            return Err(IndexError::CorruptIndex { context: "shard count must be nonzero" });
        }
        let doc_lens = index.doc_lens();
        let mut shard_doc_lens: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (d, &len) in doc_lens.iter().enumerate() {
            shard_doc_lens[d % n].push(len);
        }

        // One decoded pass per term, fanned out into per-shard lists with
        // remapped (local) docIDs. The global term order is preserved so
        // TermIds agree across every shard and with the source index.
        let mut shard_lists: Vec<Vec<(String, PostingList, crate::score::Fixed)>> =
            (0..n).map(|_| Vec::with_capacity(index.num_terms())).collect();
        for id in 0..index.num_terms() as TermId {
            let info = index.term_info(id);
            let mut split: Vec<Vec<Posting>> = vec![Vec::new(); n];
            for p in index.encoded_list(id).decode_all().iter() {
                let s = p.doc_id as usize % n;
                split[s].push(Posting::new(p.doc_id / n as u32, p.tf));
            }
            for (s, postings) in split.into_iter().enumerate() {
                shard_lists[s].push((
                    info.term.clone(),
                    PostingList::from_sorted(postings),
                    info.idf_bar,
                ));
            }
        }

        let avgdl = index.avgdl();
        // A single "shard" is the index itself; only a real split tightens
        // the partitioner to preserve skip granularity.
        let partitioner = if n == 1 { index.partitioner() } else { shard_partitioner(index) };
        let mut shards = Vec::with_capacity(n);
        for (lists, lens) in shard_lists.into_iter().zip(shard_doc_lens) {
            shards.push(InvertedIndex::from_lists_with_stats_codec(
                lists,
                lens,
                avgdl,
                partitioner,
                index.params(),
                index.codec(),
            )?);
        }
        Ok(ShardedIndex {
            shards,
            n_docs: index.num_docs(),
            parent_partitioner: index.partitioner(),
        })
    }

    /// Reassembles the original unsharded index. Exact inverse of
    /// [`split`](Self::split): the result compares equal to the source
    /// index, byte for byte.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::CorruptIndex`] if the shards disagree on
    /// their dictionaries or a merged list fails to encode.
    pub fn merge(&self) -> Result<InvertedIndex, IndexError> {
        let n = self.shards.len();
        let Some(first) = self.shards.first() else {
            return Err(IndexError::CorruptIndex { context: "sharded index has no shards" });
        };
        let mut doc_lens = vec![0u32; self.n_docs as usize];
        for (s, shard) in self.shards.iter().enumerate() {
            for (local, &len) in shard.doc_lens().iter().enumerate() {
                let global = local * n + s;
                if global >= doc_lens.len() {
                    return Err(IndexError::CorruptIndex {
                        context: "shard document beyond merged corpus",
                    });
                }
                doc_lens[global] = len;
            }
        }

        let mut lists = Vec::with_capacity(first.num_terms());
        for id in 0..first.num_terms() as TermId {
            let term = &first.term_info(id).term;
            let mut merged: Vec<Posting> = Vec::new();
            for (s, shard) in self.shards.iter().enumerate() {
                if shard.term_id(term) != Some(id) {
                    return Err(IndexError::CorruptIndex {
                        context: "shard dictionaries disagree",
                    });
                }
                merged.extend(
                    shard
                        .encoded_list(id)
                        .decode_all()
                        .iter()
                        .map(|p| Posting::new(p.doc_id * n as u32 + s as u32, p.tf)),
                );
            }
            merged.sort_unstable_by_key(|p| p.doc_id);
            lists.push((term.clone(), PostingList::from_sorted(merged)));
        }
        InvertedIndex::from_lists_codec(
            lists,
            doc_lens,
            self.parent_partitioner,
            first.params(),
            first.codec(),
        )
    }

    /// The partitioner of the index this was split from (the one
    /// [`merge`](Self::merge) re-encodes with).
    pub fn parent_partitioner(&self) -> Partitioner {
        self.parent_partitioner
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total documents across all shards (the global corpus size).
    pub fn num_docs(&self) -> u64 {
        self.n_docs
    }

    /// The shard sub-indexes, in shard order.
    pub fn shards(&self) -> &[InvertedIndex] {
        &self.shards
    }

    /// One shard.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn shard(&self, s: usize) -> &InvertedIndex {
        &self.shards[s]
    }

    /// Maps a shard-local docID back to its global docID.
    pub fn global_doc(&self, shard: usize, local: DocId) -> DocId {
        local * self.shards.len() as u32 + shard as u32
    }

    /// Per-shard document/posting balance and bounds coverage.
    pub fn balance(&self) -> Vec<ShardBalance> {
        self.shards
            .iter()
            .enumerate()
            .map(|(s, shard)| {
                let mut postings = 0u64;
                let mut blocks = 0u64;
                let mut nonempty = 0u64;
                let mut bounded = 0u64;
                for id in 0..shard.num_terms() as TermId {
                    let list = shard.encoded_list(id);
                    postings += list.num_postings();
                    blocks += list.num_blocks() as u64;
                    if list.num_postings() > 0 {
                        nonempty += 1;
                    }
                    if shard.list_bounds(id).num_blocks() > 0 {
                        bounded += 1;
                    }
                }
                ShardBalance {
                    shard: s,
                    docs: shard.num_docs(),
                    postings,
                    blocks,
                    nonempty_lists: nonempty,
                    bounded_lists: bounded,
                }
            })
            .collect()
    }

    /// Validates every shard (see [`InvertedIndex::validate`]) plus the
    /// cross-shard invariants: document counts sum to the global corpus
    /// and the round-robin split is balanced (counts differ by at most
    /// one).
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::CorruptIndex`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), IndexError> {
        for shard in &self.shards {
            shard.validate()?;
        }
        self.validate_cross_shard()
    }

    /// The cross-shard half of [`validate`](Self::validate): shard count,
    /// codec agreement, round-robin document counts. Cheap — no per-shard
    /// decode.
    fn validate_cross_shard(&self) -> Result<(), IndexError> {
        if self.shards.is_empty() {
            return Err(IndexError::CorruptIndex { context: "sharded index has no shards" });
        }
        let mut total = 0u64;
        let n = self.shards.len() as u64;
        let codec = self.shards[0].codec();
        for (s, shard) in self.shards.iter().enumerate() {
            if shard.codec() != codec {
                return Err(IndexError::CorruptIndex { context: "shard codecs disagree" });
            }
            // Round-robin gives shard s exactly ceil((n_docs - s) / n) docs.
            let expect = (self.n_docs + n - 1 - s as u64) / n;
            if shard.num_docs() != expect {
                return Err(IndexError::CorruptIndex {
                    context: "shard document count off round-robin",
                });
            }
            total += shard.num_docs();
        }
        if total != self.n_docs {
            return Err(IndexError::CorruptIndex {
                context: "shard document counts do not sum to corpus",
            });
        }
        Ok(())
    }

    /// Assembles a sharded index from parts (the deserializer's entry
    /// point). Validates the cross-shard invariants before accepting.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::CorruptIndex`] if the parts are inconsistent.
    pub fn from_shards(
        shards: Vec<InvertedIndex>,
        n_docs: u64,
        parent_partitioner: Partitioner,
    ) -> Result<Self, IndexError> {
        let sharded = ShardedIndex { shards, n_docs, parent_partitioner };
        sharded.validate()?;
        Ok(sharded)
    }

    /// [`from_shards`](Self::from_shards) minus the per-shard deep
    /// validation — the zero-copy manifest loader's entry point
    /// ([`crate::storage`]), which has already validated each shard
    /// structurally while parsing it and recomputed its score bounds from
    /// the decoded postings. Re-running [`InvertedIndex::validate`] here
    /// would decode every payload a second time.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::CorruptIndex`] if the cross-shard invariants
    /// fail (shard count, codec agreement, round-robin doc counts).
    pub(crate) fn from_shards_prevalidated(
        shards: Vec<InvertedIndex>,
        n_docs: u64,
        parent_partitioner: Partitioner,
    ) -> Result<Self, IndexError> {
        let sharded = ShardedIndex { shards, n_docs, parent_partitioner };
        sharded.validate_cross_shard()?;
        Ok(sharded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuildOptions, IndexBuilder};
    use crate::partition::Partitioner;

    fn sample_index() -> InvertedIndex {
        let mut b = IndexBuilder::new(BuildOptions {
            partitioner: Partitioner::fixed(4),
            ..Default::default()
        });
        b.add_document(&"alpha beta ".repeat(6));
        b.add_document("beta gamma");
        b.add_document(&"alpha ".repeat(3));
        for i in 0..40 {
            b.add_document(&format!("alpha filler{} beta", i % 5));
        }
        b.build()
    }

    #[test]
    fn split_is_round_robin_with_remapped_ids() {
        let idx = sample_index();
        let sharded = ShardedIndex::split(&idx, 3).unwrap();
        assert_eq!(sharded.num_shards(), 3);
        assert_eq!(sharded.num_docs(), idx.num_docs());
        sharded.validate().unwrap();

        // Every global posting appears in exactly one shard at d / n.
        let id = idx.term_id("alpha").unwrap();
        for p in idx.encoded_list(id).decode_all().iter() {
            let s = p.doc_id as usize % 3;
            let shard = sharded.shard(s);
            let sid = shard.term_id("alpha").unwrap();
            let local = shard
                .encoded_list(sid)
                .decode_all()
                .iter()
                .find(|q| q.doc_id == p.doc_id / 3)
                .copied()
                .unwrap();
            assert_eq!(local.tf, p.tf);
            assert_eq!(sharded.global_doc(s, local.doc_id), p.doc_id);
        }
    }

    #[test]
    fn shards_share_dictionary_and_global_stats() {
        let idx = sample_index();
        let sharded = ShardedIndex::split(&idx, 4).unwrap();
        for shard in sharded.shards() {
            assert_eq!(shard.num_terms(), idx.num_terms());
            assert!((shard.avgdl() - idx.avgdl()).abs() < 1e-12);
            for id in 0..idx.num_terms() as TermId {
                let gi = idx.term_info(id);
                let si = shard.term_info(id);
                assert_eq!(si.term, gi.term, "TermIds must agree across shards");
                assert_eq!(si.idf_bar, gi.idf_bar, "idf̄ must be the global value");
            }
        }
    }

    #[test]
    fn shard_scores_match_global_scores() {
        // The whole point: a document's Q16.16 score is identical whether
        // computed against the shard or the full index.
        let idx = sample_index();
        let sharded = ShardedIndex::split(&idx, 3).unwrap();
        let id = idx.term_id("beta").unwrap();
        for p in idx.encoded_list(id).decode_all().iter() {
            let s = p.doc_id as usize % 3;
            let local = p.doc_id / 3;
            let global_score = crate::score::term_score_fixed(
                idx.term_info(id).idf_bar,
                idx.dl_bar(p.doc_id),
                p.tf,
            );
            let shard = sharded.shard(s);
            let shard_score = crate::score::term_score_fixed(
                shard.term_info(id).idf_bar,
                shard.dl_bar(local),
                p.tf,
            );
            assert_eq!(shard_score, global_score);
        }
    }

    #[test]
    fn merge_is_exact_inverse_of_split() {
        let idx = sample_index();
        for n in [1, 2, 3, 7] {
            let sharded = ShardedIndex::split(&idx, n).unwrap();
            let merged = sharded.merge().unwrap();
            assert_eq!(merged, idx, "split({n}) then merge must reproduce the index");
        }
    }

    #[test]
    fn split_and_merge_preserve_the_codec() {
        for codec in crate::codec::CodecId::ALL {
            let mut b = IndexBuilder::new(BuildOptions {
                partitioner: Partitioner::fixed(4),
                codec,
                ..Default::default()
            });
            b.add_document(&"alpha beta ".repeat(6));
            b.add_document("beta gamma");
            for i in 0..40 {
                b.add_document(&format!("alpha filler{} beta", i % 5));
            }
            let idx = b.build();
            let sharded = ShardedIndex::split(&idx, 3).unwrap();
            sharded.validate().unwrap();
            for shard in sharded.shards() {
                assert_eq!(shard.codec(), codec);
            }
            assert_eq!(sharded.merge().unwrap(), idx, "{codec} split/merge round trip");
        }
    }

    #[test]
    fn more_shards_than_docs_leaves_empty_shards() {
        let mut b = IndexBuilder::new(BuildOptions::default());
        b.add_document("solo doc");
        let idx = b.build();
        let sharded = ShardedIndex::split(&idx, 4).unwrap();
        sharded.validate().unwrap();
        assert_eq!(sharded.shard(0).num_docs(), 1);
        for s in 1..4 {
            assert_eq!(sharded.shard(s).num_docs(), 0);
            assert_eq!(sharded.shard(s).num_terms(), idx.num_terms());
        }
        assert_eq!(sharded.merge().unwrap(), idx);
    }

    #[test]
    fn merge_round_trips_adversarial_shard_counts() {
        // The recovery merge path reuses this machinery, so the inverse
        // property must hold at the degenerate extremes too: a single
        // shard (identity), exactly one shard per document, and far more
        // shards than documents (trailing shards entirely empty).
        let idx = sample_index();
        let n_docs = idx.num_docs() as usize;
        for n in [1, n_docs, n_docs + 1, 2 * n_docs + 3] {
            let sharded = ShardedIndex::split(&idx, n).unwrap();
            sharded.validate().unwrap();
            assert_eq!(sharded.num_shards(), n);
            assert_eq!(sharded.merge().unwrap(), idx, "split({n}) broke the round trip");
        }
    }

    #[test]
    fn merge_round_trips_empty_corpus_and_empty_bodies() {
        // Every shard body empty: an empty corpus split any way must
        // validate and merge back to the empty index.
        let empty = IndexBuilder::new(BuildOptions::default()).build();
        for n in [1, 3, 8] {
            let sharded = ShardedIndex::split(&empty, n).unwrap();
            sharded.validate().unwrap();
            for s in 0..n {
                assert_eq!(sharded.shard(s).num_docs(), 0);
            }
            assert_eq!(sharded.merge().unwrap(), empty, "empty split({n}) round trip");
        }

        // Mixed: one document fanned across 5 shards leaves shards 1..5
        // with zero documents and every posting list an empty placeholder;
        // those empty bodies must survive the round trip untouched.
        let mut b = IndexBuilder::new(BuildOptions::default());
        b.add_document("lonely little document with several distinct terms");
        let one = b.build();
        let sharded = ShardedIndex::split(&one, 5).unwrap();
        for s in 1..5 {
            let shard = sharded.shard(s);
            assert_eq!(shard.num_docs(), 0);
            for id in 0..shard.num_terms() as TermId {
                assert_eq!(shard.encoded_list(id).num_postings(), 0);
            }
        }
        assert_eq!(sharded.merge().unwrap(), one);
    }

    #[test]
    fn merge_of_zero_shards_is_a_typed_error() {
        let bad = ShardedIndex {
            shards: Vec::new(),
            n_docs: 0,
            parent_partitioner: Partitioner::default(),
        };
        assert!(matches!(
            bad.merge(),
            Err(IndexError::CorruptIndex { context: "sharded index has no shards" })
        ));
    }

    #[test]
    fn zero_shards_is_rejected() {
        let idx = sample_index();
        assert!(matches!(ShardedIndex::split(&idx, 0), Err(IndexError::CorruptIndex { .. })));
    }

    #[test]
    fn balance_sums_to_corpus_totals() {
        let idx = sample_index();
        let sharded = ShardedIndex::split(&idx, 3).unwrap();
        let balance = sharded.balance();
        assert_eq!(balance.len(), 3);
        let docs: u64 = balance.iter().map(|b| b.docs).sum();
        assert_eq!(docs, idx.num_docs());
        let postings: u64 = balance.iter().map(|b| b.postings).sum();
        assert_eq!(postings, idx.size_stats().postings);
        // Round-robin balance: doc counts differ by at most one.
        let max = balance.iter().map(|b| b.docs).max().unwrap();
        let min = balance.iter().map(|b| b.docs).min().unwrap();
        assert!(max - min <= 1, "round-robin must balance docs: {balance:?}");
        for b in &balance {
            assert_eq!(b.bounded_lists, b.nonempty_lists);
        }
    }

    #[test]
    fn validate_catches_doc_count_tampering() {
        let idx = sample_index();
        let sharded = ShardedIndex::split(&idx, 2).unwrap();
        let bad = ShardedIndex {
            shards: sharded.shards.clone(),
            n_docs: sharded.n_docs + 1,
            parent_partitioner: sharded.parent_partitioner,
        };
        assert!(bad.validate().is_err());
        let bad = ShardedIndex {
            shards: vec![sharded.shards[0].clone(), sharded.shards[0].clone()],
            n_docs: sharded.n_docs,
            parent_partitioner: sharded.parent_partitioner,
        };
        assert!(bad.validate().is_err(), "duplicated shard must fail round-robin check");
    }
}
