//! Positional postings (paper §2.1/§2.2).
//!
//! "The postings can also be used to contain other information such as
//! term frequency, positional information" — and phrase queries are built
//! from "an intersection query between their posting lists" plus a
//! positional check on the candidates. IIU accelerates the intersection;
//! the positional verification runs on the host. This module stores the
//! per-document token positions as a sidecar keyed by term: a sorted
//! per-document directory over a delta-varint position stream, so a phrase
//! check decodes positions for exactly the candidate documents.

use std::collections::HashMap;

use crate::posting::DocId;

/// Positions of one term's occurrences, per document.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PositionList {
    /// `(docID, byte offset, count)` sorted by docID.
    directory: Vec<(DocId, u32, u32)>,
    /// Delta-varint encoded positions, concatenated per document.
    stream: Vec<u8>,
}

fn put_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> u32 {
    let mut v = 0u32;
    let mut shift = 0u32;
    loop {
        let byte = bytes[*pos];
        *pos += 1;
        v |= u32::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

impl PositionList {
    /// Builds from `(docID, sorted positions)` pairs, which must be sorted
    /// by docID with non-empty, strictly increasing position lists.
    ///
    /// # Panics
    ///
    /// Panics if the input violates those invariants.
    pub fn from_docs(docs: &[(DocId, Vec<u32>)]) -> Self {
        let mut directory = Vec::with_capacity(docs.len());
        let mut stream = Vec::new();
        let mut prev_doc: Option<DocId> = None;
        for (doc, positions) in docs {
            assert!(!positions.is_empty(), "a posting must have at least one position");
            assert!(prev_doc.is_none_or(|p| *doc > p), "documents must be sorted and unique");
            assert!(
                positions.windows(2).all(|w| w[0] < w[1]),
                "positions must be strictly increasing"
            );
            prev_doc = Some(*doc);
            directory.push((*doc, stream.len() as u32, positions.len() as u32));
            let mut prev = 0u32;
            for (i, &p) in positions.iter().enumerate() {
                put_varint(&mut stream, if i == 0 { p } else { p - prev });
                prev = p;
            }
        }
        PositionList { directory, stream }
    }

    /// Positions of the term in `doc`, or `None` if absent.
    pub fn positions(&self, doc: DocId) -> Option<Vec<u32>> {
        let i = self.directory.partition_point(|&(d, _, _)| d < doc);
        let &(d, offset, count) = self.directory.get(i)?;
        if d != doc {
            return None;
        }
        let mut pos = offset as usize;
        let mut out = Vec::with_capacity(count as usize);
        let mut acc = 0u32;
        for k in 0..count {
            let v = get_varint(&self.stream, &mut pos);
            acc = if k == 0 { v } else { acc + v };
            out.push(acc);
        }
        Some(out)
    }

    /// Number of documents with positions.
    pub fn num_docs(&self) -> usize {
        self.directory.len()
    }

    /// Sidecar size in bytes (directory + stream).
    pub fn size_bytes(&self) -> usize {
        self.directory.len() * 12 + self.stream.len()
    }
}

/// Positional sidecar for a whole index: one [`PositionList`] per term.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PositionIndex {
    per_term: HashMap<String, PositionList>,
}

impl PositionList {
    /// Serializes to bytes (directory then stream, little-endian).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.directory.len() * 12 + self.stream.len());
        out.extend_from_slice(&(self.directory.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.stream.len() as u32).to_le_bytes());
        for &(d, o, c) in &self.directory {
            out.extend_from_slice(&d.to_le_bytes());
            out.extend_from_slice(&o.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&self.stream);
        out
    }

    /// Deserializes from bytes written by [`PositionList::to_bytes`],
    /// advancing `*pos`. Returns `None` on truncated input.
    pub fn from_bytes(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        let take4 = |pos: &mut usize| -> Option<[u8; 4]> {
            let v = bytes.get(*pos..*pos + 4)?.try_into().ok()?;
            *pos += 4;
            Some(v)
        };
        let n_dirs = u32::from_le_bytes(take4(pos)?) as usize;
        let stream_len = u32::from_le_bytes(take4(pos)?) as usize;
        let mut directory = Vec::with_capacity(n_dirs);
        for _ in 0..n_dirs {
            let d = u32::from_le_bytes(take4(pos)?);
            let o = u32::from_le_bytes(take4(pos)?);
            let c = u32::from_le_bytes(take4(pos)?);
            directory.push((d, o, c));
        }
        let stream = bytes.get(*pos..*pos + stream_len)?.to_vec();
        *pos += stream_len;
        Some(PositionList { directory, stream })
    }
}

impl PositionIndex {
    /// Creates an empty position index.
    pub fn new() -> Self {
        PositionIndex::default()
    }

    /// Inserts a term's position list.
    pub fn insert(&mut self, term: String, list: PositionList) {
        self.per_term.insert(term, list);
    }

    /// The position list of `term`, if tracked.
    pub fn list(&self, term: &str) -> Option<&PositionList> {
        self.per_term.get(term)
    }

    /// Number of tracked terms.
    pub fn num_terms(&self) -> usize {
        self.per_term.len()
    }

    /// Total sidecar size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.per_term.values().map(PositionList::size_bytes).sum()
    }

    /// Serializes the whole sidecar to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut terms: Vec<&String> = self.per_term.keys().collect();
        terms.sort(); // deterministic output
        let mut out = Vec::new();
        out.extend_from_slice(&(terms.len() as u32).to_le_bytes());
        for term in terms {
            let list = &self.per_term[term];
            out.extend_from_slice(&(term.len() as u32).to_le_bytes());
            out.extend_from_slice(term.as_bytes());
            out.extend_from_slice(&list.to_bytes());
        }
        out
    }

    /// Deserializes a sidecar written by [`PositionIndex::to_bytes`].
    /// Returns `None` on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let n_terms = u32::from_le_bytes(bytes.get(0..4)?.try_into().ok()?) as usize;
        pos += 4;
        let mut out = PositionIndex::new();
        for _ in 0..n_terms {
            let len = u32::from_le_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?) as usize;
            pos += 4;
            let term = std::str::from_utf8(bytes.get(pos..pos + len)?).ok()?.to_owned();
            pos += len;
            let list = PositionList::from_bytes(bytes, &mut pos)?;
            out.insert(term, list);
        }
        (pos == bytes.len()).then_some(out)
    }

    /// Checks whether `doc` contains the exact phrase `terms` (consecutive
    /// positions). Returns false if any term lacks position data for the
    /// document.
    ///
    /// # Example
    ///
    /// ```
    /// use iiu_index::{BuildOptions, IndexBuilder};
    /// let mut b = IndexBuilder::new(BuildOptions { track_positions: true, ..Default::default() });
    /// b.add_document("the quick brown fox");
    /// b.add_document("brown the quick dog");
    /// let (_, positions) = b.build_with_positions();
    /// assert!(positions.phrase_in_doc(&["the", "quick"], 0));
    /// assert!(positions.phrase_in_doc(&["the", "quick"], 1));
    /// assert!(!positions.phrase_in_doc(&["quick", "brown"], 1));
    /// ```
    pub fn phrase_in_doc<T: AsRef<str>>(&self, terms: &[T], doc: DocId) -> bool {
        if terms.is_empty() {
            return false;
        }
        let mut candidates: Option<Vec<u32>> = None;
        for (i, term) in terms.iter().enumerate() {
            let Some(list) = self.list(term.as_ref()) else { return false };
            let Some(positions) = list.positions(doc) else { return false };
            candidates = Some(match candidates {
                None => positions,
                Some(prev) => {
                    // Keep phrase starts whose i-th word is at start + i.
                    let want: Vec<u32> = prev
                        .into_iter()
                        .filter(|&start| positions.binary_search(&(start + i as u32)).is_ok())
                        .collect();
                    if want.is_empty() {
                        return false;
                    }
                    want
                }
            });
        }
        candidates.is_some_and(|c| !c.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn positions_roundtrip() {
        let list = PositionList::from_docs(&[
            (3, vec![0, 7, 150]),
            (9, vec![2]),
            (100, vec![1, 2, 3, 4]),
        ]);
        assert_eq!(list.positions(3), Some(vec![0, 7, 150]));
        assert_eq!(list.positions(9), Some(vec![2]));
        assert_eq!(list.positions(100), Some(vec![1, 2, 3, 4]));
        assert_eq!(list.positions(4), None);
        assert_eq!(list.num_docs(), 3);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn rejects_unsorted_docs() {
        let _ = PositionList::from_docs(&[(5, vec![1]), (3, vec![1])]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_positions() {
        let _ = PositionList::from_docs(&[(5, vec![3, 1])]);
    }

    #[test]
    fn phrase_matching_semantics() {
        let mut idx = PositionIndex::new();
        // "a b a b c" in doc 0.
        idx.insert("a".into(), PositionList::from_docs(&[(0, vec![0, 2])]));
        idx.insert("b".into(), PositionList::from_docs(&[(0, vec![1, 3])]));
        idx.insert("c".into(), PositionList::from_docs(&[(0, vec![4])]));
        assert!(idx.phrase_in_doc(&["a", "b"], 0));
        assert!(idx.phrase_in_doc(&["a", "b", "c"], 0));
        assert!(idx.phrase_in_doc(&["b", "a"], 0)); // b@1, a@2
        assert!(idx.phrase_in_doc(&["b", "c"], 0)); // b@3, c@4
        assert!(!idx.phrase_in_doc(&["c", "a"], 0)); // c@4, nothing at 5
        assert!(!idx.phrase_in_doc(&["a", "c"], 0)); // a@{0,2}, c@4 only
    }

    #[test]
    fn phrase_needs_every_term_present() {
        let mut idx = PositionIndex::new();
        idx.insert("a".into(), PositionList::from_docs(&[(0, vec![0])]));
        assert!(!idx.phrase_in_doc(&["a", "missing"], 0));
        assert!(!idx.phrase_in_doc::<&str>(&[], 0));
        assert!(!idx.phrase_in_doc(&["a"], 1));
    }

    #[test]
    fn sidecar_serialization_roundtrips() {
        let mut idx = PositionIndex::new();
        idx.insert("alpha".into(), PositionList::from_docs(&[(0, vec![0, 5]), (7, vec![2])]));
        idx.insert("beta".into(), PositionList::from_docs(&[(3, vec![1, 2, 3])]));
        let bytes = idx.to_bytes();
        let back = PositionIndex::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(idx, back);
        // Truncations are rejected, never panic.
        for cut in 0..bytes.len() {
            assert!(PositionIndex::from_bytes(&bytes[..cut]).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn empty_sidecar_roundtrips() {
        let idx = PositionIndex::new();
        assert_eq!(PositionIndex::from_bytes(&idx.to_bytes()), Some(idx));
    }

    proptest! {
        #[test]
        fn prop_sidecar_roundtrip(
            terms in proptest::collection::btree_map(
                "[a-z]{1,8}",
                proptest::collection::btree_map(
                    0u32..1000,
                    proptest::collection::btree_set(0u32..500, 1..8),
                    1..10,
                ),
                0..10,
            ),
        ) {
            let mut idx = PositionIndex::new();
            for (term, docs) in terms {
                let docs: Vec<(u32, Vec<u32>)> = docs
                    .into_iter()
                    .map(|(d, ps)| (d, ps.into_iter().collect()))
                    .collect();
                idx.insert(term, PositionList::from_docs(&docs));
            }
            let back = PositionIndex::from_bytes(&idx.to_bytes());
            prop_assert_eq!(back, Some(idx));
        }

        #[test]
        fn prop_positions_roundtrip(
            docs in proptest::collection::btree_map(
                0u32..10_000,
                proptest::collection::btree_set(0u32..5_000, 1..20),
                1..50,
            ),
        ) {
            let docs: Vec<(u32, Vec<u32>)> = docs
                .into_iter()
                .map(|(d, ps)| (d, ps.into_iter().collect()))
                .collect();
            let list = PositionList::from_docs(&docs);
            for (d, ps) in &docs {
                prop_assert_eq!(list.positions(*d), Some(ps.clone()));
            }
        }
    }
}
