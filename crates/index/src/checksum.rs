//! CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320), hand-rolled so the
//! index format carries per-section integrity checks without pulling in a
//! dependency.
//!
//! The format v2 writer checksums every section of the serialized index
//! (header, doc-length table, each term record) and finishes with a
//! whole-file footer; the reader verifies each section before trusting its
//! contents. See [`crate::io`] for the layout.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

/// Reflected CRC32 polynomial (IEEE 802.3 / zlib / PNG).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, one byte of input per step.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC32 over a byte stream.
///
/// # Example
///
/// ```
/// use iiu_index::checksum::Crc32;
/// let mut crc = Crc32::new();
/// crc.update(b"123456789");
/// assert_eq!(crc.finish(), 0xCBF4_3926);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            let idx = ((crc ^ u32::from(b)) & 0xff) as usize;
            crc = (crc >> 8) ^ TABLE[idx];
        }
        self.state = crc;
    }

    /// Final checksum value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value_matches_ieee_reference() {
        // The standard CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn known_vectors() {
        // Cross-checked against zlib's crc32().
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
        assert_eq!(crc32(&[0xffu8; 32]), 0xFF6C_AB0B);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0u16..1000).map(|i| (i % 251) as u8).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data = b"per-section integrity for the inverted index".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
