//! Delta (d-gap) encoding of sorted docID sequences (paper §2.1).
//!
//! `L = [0, 2, 11, 20, 38, 46]` becomes `L_Δ = [0, 2, 9, 9, 18, 8]`: the
//! first element is kept as-is and every later element stores its distance
//! from the predecessor. Within the IIU block format the first element of a
//! *block* is recovered from the block's raw skip value instead, so its
//! stored d-gap is 0 (see [`crate::block`]).

use crate::posting::DocId;

/// Delta-encodes a strictly increasing docID sequence. The first element is
/// emitted unchanged.
///
/// # Panics
///
/// Panics if the input is not strictly increasing.
///
/// # Example
///
/// ```
/// use iiu_index::delta::{encode, decode};
/// let gaps = encode(&[0, 2, 11, 20, 38, 46]);
/// assert_eq!(gaps, vec![0, 2, 9, 9, 18, 8]);
/// assert_eq!(decode(&gaps), vec![0, 2, 11, 20, 38, 46]);
/// ```
pub fn encode(doc_ids: &[DocId]) -> Vec<u32> {
    let mut out = Vec::with_capacity(doc_ids.len());
    let mut prev: Option<DocId> = None;
    for &d in doc_ids {
        match prev {
            None => out.push(d),
            Some(p) => {
                assert!(d > p, "docIDs must be strictly increasing for delta encoding");
                out.push(d - p);
            }
        }
        prev = Some(d);
    }
    out
}

/// Inverse of [`encode`].
pub fn decode(gaps: &[u32]) -> Vec<DocId> {
    let mut out = Vec::with_capacity(gaps.len());
    let mut acc: u32 = 0;
    for (i, &g) in gaps.iter().enumerate() {
        acc = if i == 0 { g } else { acc + g };
        out.push(acc);
    }
    out
}

/// In-place prefix-sum reconstruction starting from `base`; used by block
/// decoders where the block's skip value is the base (skip + d-gap = docID,
/// paper §3.1).
pub fn decode_from_base(base: DocId, gaps: &mut [u32]) {
    let mut acc = base;
    for g in gaps.iter_mut() {
        acc += *g;
        *g = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example() {
        // L(business) from §2.1.
        let l = [0u32, 2, 11, 20, 38, 46];
        assert_eq!(encode(&l), vec![0, 2, 9, 9, 18, 8]);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(encode(&[]), Vec::<u32>::new());
        assert_eq!(decode(&[]), Vec::<u32>::new());
        assert_eq!(encode(&[42]), vec![42]);
        assert_eq!(decode(&[42]), vec![42]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_equal_neighbors() {
        let _ = encode(&[1, 1]);
    }

    #[test]
    fn decode_from_base_adds_skip() {
        let mut gaps = [0u32, 3, 5];
        decode_from_base(100, &mut gaps);
        assert_eq!(gaps, [100, 103, 108]);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(mut ids in proptest::collection::btree_set(0u32..1 << 30, 0..300)) {
            let ids: Vec<u32> = std::mem::take(&mut ids).into_iter().collect();
            prop_assert_eq!(decode(&encode(&ids)), ids);
        }
    }
}
