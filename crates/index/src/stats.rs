//! Size accounting for compressed indexes (feeds Table 2 and Fig. 14).

/// Aggregate storage statistics for an index or a set of posting lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexSizeStats {
    /// Total postings across all lists.
    pub postings: u64,
    /// Size of the postings stored uncompressed (8 B each).
    pub uncompressed_bytes: u64,
    /// Bit-packed payload bytes.
    pub payload_bytes: u64,
    /// Per-block 64-bit metadata words, in bytes.
    pub metadata_bytes: u64,
    /// Per-block 32-bit skip values, in bytes.
    pub skip_bytes: u64,
    /// Exact cost under the paper's Eq. 3 model, in bits.
    pub model_bits: u64,
    /// Total number of blocks.
    pub num_blocks: u64,
}

impl IndexSizeStats {
    /// Total physical compressed size (payload + metadata + skips).
    pub fn compressed_bytes(&self) -> u64 {
        self.payload_bytes + self.metadata_bytes + self.skip_bytes
    }

    /// The paper's compression ratio: uncompressed size over compressed
    /// size (higher is better; Table 2).
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed_bytes() == 0 {
            return 0.0;
        }
        self.uncompressed_bytes as f64 / self.compressed_bytes() as f64
    }

    /// Compression ratio under the exact bit-cost model (no byte
    /// alignment), matching the DP objective.
    pub fn model_compression_ratio(&self) -> f64 {
        if self.model_bits == 0 {
            return 0.0;
        }
        (self.uncompressed_bytes * 8) as f64 / self.model_bits as f64
    }

    /// Achieved storage cost in bits per posting across the physical
    /// compressed sections (payload + metadata + skips).
    pub fn bits_per_posting(&self) -> f64 {
        if self.postings == 0 {
            return 0.0;
        }
        (self.compressed_bytes() * 8) as f64 / self.postings as f64
    }

    /// Average postings per block (the lever Fig. 14 sweeps via `maxSize`).
    pub fn avg_block_len(&self) -> f64 {
        if self.num_blocks == 0 {
            return 0.0;
        }
        self.postings as f64 / self.num_blocks as f64
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &IndexSizeStats) {
        self.postings += other.postings;
        self.uncompressed_bytes += other.uncompressed_bytes;
        self.payload_bytes += other.payload_bytes;
        self.metadata_bytes += other.metadata_bytes;
        self.skip_bytes += other.skip_bytes;
        self.model_bits += other.model_bits;
        self.num_blocks += other.num_blocks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty() {
        let s = IndexSizeStats::default();
        assert_eq!(s.compression_ratio(), 0.0);
        assert_eq!(s.model_compression_ratio(), 0.0);
        assert_eq!(s.avg_block_len(), 0.0);
    }

    #[test]
    fn ratio_math() {
        let s = IndexSizeStats {
            postings: 100,
            uncompressed_bytes: 800,
            payload_bytes: 60,
            metadata_bytes: 16,
            skip_bytes: 8,
            model_bits: 640,
            num_blocks: 2,
        };
        assert_eq!(s.compressed_bytes(), 84);
        assert!((s.compression_ratio() - 800.0 / 84.0).abs() < 1e-12);
        assert!((s.model_compression_ratio() - 6400.0 / 640.0).abs() < 1e-12);
        assert_eq!(s.avg_block_len(), 50.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = IndexSizeStats {
            postings: 1,
            uncompressed_bytes: 8,
            payload_bytes: 2,
            metadata_bytes: 8,
            skip_bytes: 4,
            model_bits: 100,
            num_blocks: 1,
        };
        a.merge(&a.clone());
        assert_eq!(a.postings, 2);
        assert_eq!(a.num_blocks, 2);
        assert_eq!(a.model_bits, 200);
    }
}
