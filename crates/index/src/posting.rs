//! Postings and posting lists.
//!
//! A posting list is the value side of the inverted index: for one term, the
//! sorted list of documents containing it, each paired with the term's
//! within-document frequency (paper §2.1, Fig. 4).

use std::fmt;

/// A document identifier. The paper assumes 32-bit docIDs ("assuming a 4B
/// docID", §1), and the per-block skip value is stored as a raw 32-bit docID.
pub type DocId = u32;

/// A within-document term frequency. Stored alongside every docID so that the
/// scoring units can compute BM25 without a second index lookup (§3.1).
pub type TermFreq = u32;

/// One element of a posting list: a `(docID, term frequency)` tuple.
///
/// # Example
///
/// ```
/// use iiu_index::Posting;
/// let p = Posting::new(7, 11);
/// assert_eq!(p.doc_id, 7);
/// assert_eq!(p.tf, 11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Posting {
    /// Identifier of the document containing the term.
    pub doc_id: DocId,
    /// Number of occurrences of the term in that document.
    pub tf: TermFreq,
}

impl Posting {
    /// Creates a posting for `doc_id` with term frequency `tf`.
    pub fn new(doc_id: DocId, tf: TermFreq) -> Self {
        Posting { doc_id, tf }
    }
}

impl fmt::Display for Posting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, tf={})", self.doc_id, self.tf)
    }
}

impl From<(DocId, TermFreq)> for Posting {
    fn from((doc_id, tf): (DocId, TermFreq)) -> Self {
        Posting { doc_id, tf }
    }
}

/// A sorted list of postings for one term.
///
/// Invariant: docIDs are strictly increasing. [`PostingList::from_sorted`]
/// validates this; [`PostingList::from_unsorted`] establishes it by sorting
/// and merging duplicates (summing term frequencies).
///
/// # Example
///
/// ```
/// use iiu_index::{Posting, PostingList};
/// let list = PostingList::from_unsorted(vec![
///     Posting::new(5, 1),
///     Posting::new(2, 3),
///     Posting::new(5, 2),
/// ]);
/// assert_eq!(list.len(), 2);
/// assert_eq!(list.as_slice()[1], Posting::new(5, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PostingList {
    postings: Vec<Posting>,
}

impl PostingList {
    /// Creates an empty posting list.
    pub fn new() -> Self {
        PostingList::default()
    }

    /// Wraps a vector that is already strictly sorted by docID.
    ///
    /// # Panics
    ///
    /// Panics if docIDs are not strictly increasing (debug builds assert the
    /// invariant; release builds validate too, since a corrupt order breaks
    /// delta encoding silently).
    pub fn from_sorted(postings: Vec<Posting>) -> Self {
        assert!(
            postings.windows(2).all(|w| w[0].doc_id < w[1].doc_id),
            "posting list docIDs must be strictly increasing"
        );
        PostingList { postings }
    }

    /// Builds a list from arbitrary postings: sorts by docID and merges
    /// duplicates by summing their term frequencies.
    pub fn from_unsorted(mut postings: Vec<Posting>) -> Self {
        postings.sort_unstable_by_key(|p| p.doc_id);
        let mut merged: Vec<Posting> = Vec::with_capacity(postings.len());
        for p in postings {
            match merged.last_mut() {
                Some(last) if last.doc_id == p.doc_id => last.tf += p.tf,
                _ => merged.push(p),
            }
        }
        PostingList { postings: merged }
    }

    /// Appends a posting with a docID greater than every existing one.
    ///
    /// # Panics
    ///
    /// Panics if `doc_id` is not greater than the current last docID.
    pub fn push(&mut self, doc_id: DocId, tf: TermFreq) {
        if let Some(last) = self.postings.last() {
            assert!(doc_id > last.doc_id, "push must keep docIDs increasing");
        }
        self.postings.push(Posting { doc_id, tf });
    }

    /// Number of postings in the list (the term's document frequency).
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// Whether the list contains no postings.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// The postings as a slice.
    pub fn as_slice(&self) -> &[Posting] {
        &self.postings
    }

    /// Iterates over the postings in docID order.
    pub fn iter(&self) -> std::slice::Iter<'_, Posting> {
        self.postings.iter()
    }

    /// Consumes the list and returns the underlying vector.
    pub fn into_inner(self) -> Vec<Posting> {
        self.postings
    }

    /// The docIDs of the list, in order.
    pub fn doc_ids(&self) -> Vec<DocId> {
        self.postings.iter().map(|p| p.doc_id).collect()
    }

    /// The term frequencies of the list, in docID order.
    pub fn term_freqs(&self) -> Vec<TermFreq> {
        self.postings.iter().map(|p| p.tf).collect()
    }

    /// Size of the list when stored uncompressed, in bytes (4 B docID + 4 B
    /// tf per posting — the denominator-free side of the paper's compression
    /// ratio).
    pub fn uncompressed_bytes(&self) -> usize {
        self.postings.len() * 8
    }
}

impl FromIterator<Posting> for PostingList {
    fn from_iter<I: IntoIterator<Item = Posting>>(iter: I) -> Self {
        PostingList::from_unsorted(iter.into_iter().collect())
    }
}

impl Extend<Posting> for PostingList {
    fn extend<I: IntoIterator<Item = Posting>>(&mut self, iter: I) {
        let mut all = std::mem::take(&mut self.postings);
        all.extend(iter);
        *self = PostingList::from_unsorted(all);
    }
}

impl<'a> IntoIterator for &'a PostingList {
    type Item = &'a Posting;
    type IntoIter = std::slice::Iter<'a, Posting>;
    fn into_iter(self) -> Self::IntoIter {
        self.postings.iter()
    }
}

impl IntoIterator for PostingList {
    type Item = Posting;
    type IntoIter = std::vec::IntoIter<Posting>;
    fn into_iter(self) -> Self::IntoIter {
        self.postings.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sorted_accepts_increasing() {
        let list = PostingList::from_sorted(vec![Posting::new(1, 1), Posting::new(5, 2)]);
        assert_eq!(list.len(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_sorted_rejects_duplicates() {
        let _ = PostingList::from_sorted(vec![Posting::new(1, 1), Posting::new(1, 2)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_sorted_rejects_descending() {
        let _ = PostingList::from_sorted(vec![Posting::new(5, 1), Posting::new(1, 2)]);
    }

    #[test]
    fn from_unsorted_sorts_and_merges() {
        let list = PostingList::from_unsorted(vec![
            Posting::new(9, 1),
            Posting::new(2, 2),
            Posting::new(9, 4),
            Posting::new(0, 1),
        ]);
        assert_eq!(
            list.as_slice(),
            &[Posting::new(0, 1), Posting::new(2, 2), Posting::new(9, 5)]
        );
    }

    #[test]
    fn push_appends_in_order() {
        let mut list = PostingList::new();
        list.push(0, 1);
        list.push(10, 2);
        assert_eq!(list.doc_ids(), vec![0, 10]);
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn push_rejects_out_of_order() {
        let mut list = PostingList::new();
        list.push(10, 1);
        list.push(3, 1);
    }

    #[test]
    fn uncompressed_size_is_8_bytes_per_posting() {
        let list = PostingList::from_sorted(vec![Posting::new(0, 1), Posting::new(1, 1)]);
        assert_eq!(list.uncompressed_bytes(), 16);
    }

    #[test]
    fn collect_from_iterator() {
        let list: PostingList = (0..5u32).map(|i| Posting::new(i * 3, i + 1)).collect();
        assert_eq!(list.len(), 5);
        assert_eq!(list.doc_ids(), vec![0, 3, 6, 9, 12]);
    }

    #[test]
    fn empty_list_properties() {
        let list = PostingList::new();
        assert!(list.is_empty());
        assert_eq!(list.len(), 0);
        assert_eq!(list.uncompressed_bytes(), 0);
    }
}
