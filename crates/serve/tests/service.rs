//! End-to-end tests of the resilient serving layer: shedding, deadlines,
//! retries, breaker trip/recovery, panic isolation, and shutdown drain.

use std::sync::Arc;
use std::time::Duration;

use iiu_core::{CpuSearchEngine, Degradation, Query, SearchEngine};
use iiu_index::InvertedIndex;
use iiu_serve::{
    BreakerConfig, BreakerState, FaultPlan, QueryService, Rejected, RetryPolicy, ServeConfig,
};
use iiu_workloads::{CorpusConfig, QuerySampler};

fn tiny_index(seed: u64) -> InvertedIndex {
    let cfg = CorpusConfig { n_docs: 400, n_terms: 120, ..CorpusConfig::tiny(seed) };
    cfg.generate().into_default_index()
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 64,
        default_deadline: Duration::from_secs(10),
        retry: RetryPolicy {
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_micros(500),
            ..RetryPolicy::default()
        },
        ..ServeConfig::default()
    }
}

#[test]
fn clean_queries_match_cpu_engine() {
    let index = Arc::new(tiny_index(0xA11CE));
    let svc = QueryService::start(Arc::clone(&index), quick_config());
    let mut sampler = QuerySampler::new(&index, 7);
    let mut cpu = CpuSearchEngine::new(&index);
    for (a, b) in sampler.pair_queries(6) {
        let q = Query::and(Query::term(&a), Query::term(&b));
        let served = svc.search_blocking(q.clone(), 10).expect("serving failed");
        let direct = cpu.search(&q, 10).expect("cpu search failed");
        assert_eq!(served.hits, direct.hits, "hits diverge for {a} AND {b}");
        assert!(served.degraded.is_empty(), "unexpected degradation: {:?}", served.degraded);
    }
    let h = svc.health();
    assert_eq!(h.submitted, 6);
    assert_eq!(h.completed, 6);
    assert_eq!(h.breaker, BreakerState::Closed);
    assert!(h.p50.is_some() && h.p99.is_some());
}

#[test]
fn unknown_terms_degrade_identically_to_cpu() {
    let index = Arc::new(tiny_index(0xBEE));
    let svc = QueryService::start(Arc::clone(&index), quick_config());
    let mut cpu = CpuSearchEngine::new(&index);
    let q = Query::or(Query::term("zzznotaterm"), Query::term(term_of(&index, 3)));
    let served = svc.search_blocking(q.clone(), 10).expect("serving failed");
    let direct = cpu.search(&q, 10).expect("cpu search failed");
    assert_eq!(served.hits, direct.hits);
    assert_eq!(served.degraded, direct.degraded);
    assert!(served
        .degraded
        .iter()
        .any(|d| matches!(d, Degradation::UnknownTermDropped { .. })));
}

fn term_of(index: &InvertedIndex, id: u32) -> &str {
    &index.term_info(id).term
}

#[test]
fn zero_deadline_is_shed_with_stage() {
    let index = Arc::new(tiny_index(0xD0));
    let cfg = ServeConfig { default_deadline: Duration::ZERO, ..quick_config() };
    let svc = QueryService::start(Arc::clone(&index), cfg);
    let q = Query::term(term_of(&index, 0));
    match svc.search_blocking(q, 10) {
        Err(Rejected::DeadlineExceeded { stage }) => {
            assert!(!stage.is_empty());
        }
        other => panic!("expected deadline rejection, got {other:?}"),
    }
    assert_eq!(svc.health().shed_deadline, 1);
}

#[test]
fn overload_sheds_typed_rejections() {
    let index = Arc::new(tiny_index(0x10AD));
    // One worker pinned down by retry backoff (the whole burst stalls
    // every attempt), a 2-deep queue: the burst of submissions must shed.
    let cfg = ServeConfig {
        workers: 1,
        queue_capacity: 2,
        default_deadline: Duration::from_secs(30),
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(40),
            max_backoff: Duration::from_millis(80),
            jitter: 0.0,
        },
        fault: FaultPlan { burst: Some((0, 64)), ..FaultPlan::NONE },
        ..ServeConfig::default()
    };
    let svc = QueryService::start(Arc::clone(&index), cfg);
    let q = Query::term(term_of(&index, 0));
    let mut pending = Vec::new();
    let mut shed = 0usize;
    for _ in 0..16 {
        match svc.submit(q.clone(), 5) {
            Ok(p) => pending.push(p),
            Err(Rejected::Overloaded { queue_depth }) => {
                assert_eq!(queue_depth, 2);
                shed += 1;
            }
            Err(other) => panic!("unexpected rejection: {other:?}"),
        }
    }
    assert!(shed >= 8, "only {shed}/16 shed with a 2-deep queue and a pinned worker");
    for p in pending {
        // Burst-sabotaged queries exhaust retries and fall back to CPU.
        let resp = p.wait().expect("admitted queries must still resolve");
        assert!(resp.degraded.iter().any(|d| matches!(d, Degradation::CpuFallback { .. })));
    }
    let h = svc.health();
    assert_eq!(h.shed_overload, shed as u64);
    assert_eq!(h.submitted, 16);
    assert_eq!(h.degraded_ok + h.shed_overload, 16);
}

#[test]
fn sharded_fallback_serves_identical_hits_and_reports_shard_stats() {
    let index = Arc::new(tiny_index(0x5AAD));
    // Every device attempt of every query is sabotaged, so each query
    // exhausts retries and lands on the CPU fallback — which here fans
    // out across 3 document shards.
    let cfg = ServeConfig {
        shards: 3,
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(100),
            jitter: 0.0,
        },
        fault: FaultPlan { burst: Some((0, 1024)), ..FaultPlan::NONE },
        ..quick_config()
    };
    let svc = QueryService::start(Arc::clone(&index), cfg);
    let mut cpu = CpuSearchEngine::new(&index);
    let mut sampler = QuerySampler::new(&index, 21);
    let mut expected_candidates = 0u64;
    for (a, b) in sampler.pair_queries(5) {
        for q in [
            Query::term(a.clone()),
            Query::and(Query::term(&a), Query::term(&b)),
            Query::or(Query::term(&a), Query::term(&b)),
        ] {
            let served = svc.search_blocking(q.clone(), 10).expect("fallback should serve");
            let direct = cpu.search(&q, 10).expect("cpu search failed");
            assert_eq!(served.hits, direct.hits, "sharded fallback diverges for {q}");
            assert!(
                served.degraded.iter().any(|d| matches!(d, Degradation::CpuFallback { .. })),
                "expected a fallback tag: {:?}",
                served.degraded
            );
            expected_candidates += served.candidates;
        }
    }
    let h = svc.health();
    assert_eq!(h.cpu_fallbacks, 15);
    assert_eq!(h.shards, 3);
    assert_eq!(h.shard_docs_scored.len(), 3, "one load counter per shard");
    assert!(
        h.shard_docs_scored.iter().all(|&d| d > 0),
        "every shard should have scored documents: {:?}",
        h.shard_docs_scored
    );
    // The fallback path keeps (not drops) the CPU outcome's accounting.
    assert_eq!(h.fallback_candidates, expected_candidates);
    assert!(h.fallback_modeled_ns > 0);
    assert!(h.to_string().contains("shards=3"));
}

#[test]
fn unsharded_fallback_still_records_its_work() {
    let index = Arc::new(tiny_index(0x5AAE));
    let cfg = ServeConfig {
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(100),
            jitter: 0.0,
        },
        fault: FaultPlan { burst: Some((0, 1024)), ..FaultPlan::NONE },
        ..quick_config()
    };
    let svc = QueryService::start(Arc::clone(&index), cfg);
    let q = Query::term(term_of(&index, 2));
    let served = svc.search_blocking(q, 10).expect("fallback should serve");
    let h = svc.health();
    assert_eq!(h.shards, 1);
    assert!(h.shard_docs_scored.is_empty());
    assert_eq!(h.fallback_candidates, served.candidates);
    assert!(h.fallback_candidates > 0, "fallback work accounting was dropped");
}

#[test]
fn transient_stall_is_retried_and_tagged() {
    let index = Arc::new(tiny_index(0x7E57));
    // stall_rate 1.0 sabotages exactly the first attempt of every query;
    // the retry runs clean and must succeed with bit-identical hits.
    let cfg = ServeConfig {
        fault: FaultPlan { stall_rate: 1.0, seed: 9, ..FaultPlan::NONE },
        ..quick_config()
    };
    let svc = QueryService::start(Arc::clone(&index), cfg);
    let mut cpu = CpuSearchEngine::new(&index);
    let q = Query::term(term_of(&index, 1));
    let served = svc.search_blocking(q.clone(), 10).expect("retry should recover");
    let direct = cpu.search(&q, 10).expect("cpu search failed");
    assert_eq!(served.hits, direct.hits);
    assert!(
        served.degraded.contains(&Degradation::Retried { attempts: 2 }),
        "missing retry tag: {:?}",
        served.degraded
    );
    let h = svc.health();
    assert_eq!(h.retries, 1);
    assert_eq!(h.degraded_ok, 1);
    assert_eq!(h.cpu_fallbacks, 0, "retry must recover without falling back");
}

#[test]
fn breaker_trips_then_recovers() {
    let index = Arc::new(tiny_index(0xB12));
    // Single worker for a deterministic seq → outcome order. Queries
    // 0..3 stall on every attempt (retries disabled), tripping the
    // 3-failure breaker; later queries find a healed device.
    let cfg = ServeConfig {
        workers: 1,
        default_deadline: Duration::from_secs(30),
        retry: RetryPolicy { max_attempts: 1, ..RetryPolicy::default() },
        breaker: BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(20),
            probe_successes: 2,
        },
        fault: FaultPlan { burst: Some((0, 3)), ..FaultPlan::NONE },
        ..quick_config()
    };
    let svc = QueryService::start(Arc::clone(&index), cfg);
    let q = Query::term(term_of(&index, 2));

    for _ in 0..3 {
        let resp = svc.search_blocking(q.clone(), 10).expect("fallback answers");
        assert!(resp.degraded.iter().any(|d| matches!(d, Degradation::CpuFallback { .. })));
    }
    assert_eq!(svc.health().breaker, BreakerState::Open);
    assert_eq!(svc.health().breaker_trips, 1);

    // While open (cooldown not elapsed), queries take the CPU with the
    // breaker-open reason.
    let resp = svc.search_blocking(q.clone(), 10).expect("open breaker still answers");
    assert!(resp.degraded.iter().any(|d| matches!(
        d,
        Degradation::CpuFallback { reason } if reason.contains("breaker")
    )));

    // After the cooldown, probes run on the healed device and close the
    // breaker again.
    std::thread::sleep(Duration::from_millis(30));
    let mut recovered = false;
    for _ in 0..8 {
        let resp = svc.search_blocking(q.clone(), 10).expect("probing answers");
        if resp.degraded.is_empty() {
            recovered = true;
        }
    }
    assert!(recovered, "device path never served again after cooldown");
    let h = svc.health();
    assert_eq!(h.breaker, BreakerState::Closed);
    assert!(h.breaker_recoveries >= 1);
    assert_eq!(h.panicked, 0);
}

#[test]
fn injected_panic_is_isolated_and_falls_back() {
    // Keep the intentional panic's backtrace out of the test output;
    // real panics still print.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.payload().downcast_ref::<String>().map(String::as_str).unwrap_or("");
        if !msg.contains("injected panic fault") {
            default_hook(info);
        }
    }));
    let index = Arc::new(tiny_index(0xFA11));
    let cfg = ServeConfig {
        workers: 1,
        fault: FaultPlan { panic_burst: Some((0, 1)), ..FaultPlan::NONE },
        ..quick_config()
    };
    let svc = QueryService::start(Arc::clone(&index), cfg);
    let q = Query::term(term_of(&index, 0));

    let resp = svc.search_blocking(q.clone(), 10).expect("panic must not kill query");
    assert!(resp.degraded.iter().any(|d| matches!(
        d,
        Degradation::CpuFallback { reason } if reason.contains("panicked")
    )));

    // The worker survived and serves the next query cleanly.
    let resp = svc.search_blocking(q, 10).expect("worker must survive the panic");
    assert!(resp.degraded.is_empty(), "{:?}", resp.degraded);
    let h = svc.health();
    assert_eq!(h.panicked, 1);
    assert_eq!(h.completed, 1);
    assert_eq!(h.degraded_ok, 1);
}

#[test]
fn shutdown_drains_admitted_queries_and_rejects_new_ones() {
    let index = Arc::new(tiny_index(0x5D));
    let mut svc = QueryService::start(Arc::clone(&index), quick_config());
    let q = Query::term(term_of(&index, 0));
    let pending: Vec<_> =
        (0..8).map(|_| svc.submit(q.clone(), 5).expect("admission")).collect();
    svc.shutdown();
    assert!(matches!(svc.submit(q, 5), Err(Rejected::ShuttingDown)));
    for p in pending {
        p.wait().expect("admitted before shutdown, must be drained");
    }
    let h = svc.health();
    assert_eq!(h.completed, 8);
}

#[test]
fn shutdown_never_loses_the_wakeup_race() {
    // Regression test for a lost-wakeup deadlock: a worker that had just
    // observed `shutdown == false` under the queue lock but had not yet
    // parked on the condvar would miss an unlocked store + notify_all and
    // park forever, hanging shutdown() on the join (seen in the wild as a
    // soak run wedged with one worker futex-parked). The window is a few
    // instructions wide, so this churn is a best-effort canary, not a
    // reliable reproducer; the real guarantee is the lock discipline in
    // shutdown() (flag flipped under the queue lock).
    let index = Arc::new(tiny_index(0xAA));
    let q = Query::term(term_of(&index, 0));
    for i in 0..400 {
        let cfg = ServeConfig { workers: 4, ..quick_config() };
        let mut svc = QueryService::start(Arc::clone(&index), cfg);
        // Every few iterations run a real query so some workers race from
        // the serve path back to the park point instead of from spawn.
        let pending = (i % 4 == 0).then(|| svc.submit(q.clone(), 3).expect("admission"));
        svc.shutdown();
        if let Some(p) = pending {
            p.wait().expect("admitted before shutdown, must be drained");
        }
    }
}

#[test]
fn wedged_shard_task_degrades_instead_of_hanging() {
    // Regression test for the fan-out deadline policy: a shard task that
    // stalls past the pool deadline must resolve as a partial answer
    // carrying Degradation::ShardsUnavailable — never hang the query or
    // the service. Chaos stalls half of all (seq, shard) executions for
    // 5x the fan-out deadline, so the stream mixes clean fan-outs,
    // one-shard wedges (partial answers), and total wedges (rescued by
    // the unsharded engine). All of them must answer, in bounded time.
    let index = Arc::new(tiny_index(0x3ED6ED));
    let cfg = ServeConfig {
        shards: 2,
        retry: RetryPolicy { max_attempts: 1, ..RetryPolicy::default() },
        fault: FaultPlan { burst: Some((0, u64::MAX)), ..FaultPlan::NONE },
        shard_pool: iiu_serve::ShardPoolConfig {
            deadline: Some(Duration::from_millis(40)),
            ..iiu_serve::ShardPoolConfig::default()
        },
        shard_chaos: iiu_serve::ShardChaosPlan {
            stall_rate: 0.5,
            stall: Duration::from_millis(200),
            seed: 0xC0FFEE,
            ..iiu_serve::ShardChaosPlan::NONE
        },
        ..quick_config()
    };
    let svc = QueryService::start(Arc::clone(&index), cfg);
    let started = std::time::Instant::now();
    let mut partials = 0u64;
    for id in 0..12u32 {
        let q = Query::term(term_of(&index, id));
        let resp = svc.search_blocking(q, 10).expect("fail-soft serving must answer");
        if resp.degraded.iter().any(|d| matches!(d, Degradation::ShardsUnavailable { .. })) {
            partials += 1;
        }
        // Let a stalled task finish sleeping so its shard drains and the
        // next query exercises a fresh wedge instead of piling onto a
        // shard already marked wedged (which resolves as a rescue, not a
        // partial).
        std::thread::sleep(Duration::from_millis(220));
    }
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "wedged shard tasks must not stack into a hang"
    );
    let h = svc.health();
    assert!(partials > 0, "the stall plan should wedge at least one single shard");
    assert_eq!(h.shard_partials, partials);
    assert_eq!(h.answered(), 12, "every query answers despite wedged tasks");
}

#[test]
fn hybrid_scheduler_routes_by_cost_and_stays_bit_identical() {
    let index = Arc::new(tiny_index(0x11B71D));
    // Pick the rarest and the most common term, then set the heavy
    // threshold between them so the scheduler must use both routes.
    let df_of = |id: u32| index.term_info(id).df;
    let ids: Vec<u32> = (0..index.num_terms() as u32).collect();
    let rare = *ids.iter().min_by_key(|&&i| df_of(i)).expect("nonempty dictionary");
    let common = *ids.iter().max_by_key(|&&i| df_of(i)).expect("nonempty dictionary");
    assert!(df_of(rare) < df_of(common), "corpus must have df spread");
    let cfg = ServeConfig {
        shards: 2,
        retry: RetryPolicy { max_attempts: 1, ..RetryPolicy::default() },
        fault: FaultPlan { burst: Some((0, u64::MAX)), ..FaultPlan::NONE },
        scheduler: iiu_serve::SchedulerConfig {
            hybrid: true,
            heavy_df_threshold: df_of(common),
            ..iiu_serve::SchedulerConfig::default()
        },
        ..quick_config()
    };
    let svc = QueryService::start(Arc::clone(&index), cfg);
    let mut cpu = CpuSearchEngine::new(&index);
    let (rare, common) =
        (term_of(&index, rare).to_string(), term_of(&index, common).to_string());
    let queries = [
        Query::term(&rare),                                   // inline
        Query::term(&common),                                 // fan-out
        Query::and(Query::term(&rare), Query::term(&common)), // fan-out (longest list)
        Query::or(Query::term(&rare), Query::term(&common)),  // fan-out
    ];
    for q in queries {
        let served = svc.search_blocking(q.clone(), 10).expect("fallback should serve");
        let direct = cpu.search(&q, 10).expect("cpu search failed");
        assert_eq!(served.hits, direct.hits, "hybrid routing changed hits for {q}");
    }
    let h = svc.health();
    assert_eq!(h.sched_inline, 1, "the rare query routes inter-query");
    assert_eq!(h.sched_fanout, 3, "heavy-list queries route intra-query");
    assert_eq!(h.sched_inline + h.sched_fanout, h.cpu_fallbacks);
}
