//! The multi-worker query service: bounded admission, deadlines, retry
//! with jittered backoff, panic isolation, and breaker-guarded CPU
//! fallback.
//!
//! One [`QueryService`] owns a worker-thread pool sharing a single
//! `Arc<InvertedIndex>` (the paper's host-resident index image, §4.1).
//! Every submitted query resolves to exactly one of: clean hits, degraded
//! hits (carrying [`Degradation`] records), or a typed [`Rejected`] — the
//! service never panics a caller and never silently drops a query.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use iiu_core::{
    CpuSearchEngine, Degradation, IiuSearchEngine, IngestDoc, LiveIndex, Query, SearchEngine,
    SearchError, SearchResponse, ShardedSearchEngine,
};
use iiu_index::faultinject::SplitMix64;
use iiu_index::{IndexError, InvertedIndex};
use iiu_sim::SimConfig;

use crate::breaker::{CircuitBreaker, Route};
use crate::config::ServeConfig;
use crate::stats::{HealthSnapshot, ServeStats};

/// Why the service declined to answer a query with hits.
#[derive(Debug)]
#[non_exhaustive]
pub enum Rejected {
    /// Shed at admission: the queue was at capacity.
    Overloaded {
        /// Queue depth observed at admission time.
        queue_depth: usize,
    },
    /// The per-query deadline expired before an answer was produced.
    DeadlineExceeded {
        /// Pipeline stage at which the deadline was detected
        /// (`"admission"`, `"queue"`, `"device"`, `"retry"`, `"fallback"`).
        stage: &'static str,
    },
    /// Both the device path and the CPU fallback failed with a typed
    /// error.
    Failed {
        /// The final error (from the fallback, which ran last).
        error: SearchError,
    },
    /// The query panicked even on the CPU fallback path; the panic was
    /// isolated to this query and the worker survived.
    Panicked {
        /// The panic payload, stringified.
        message: String,
    },
    /// The service is shutting down and no longer admits queries.
    ShuttingDown,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::Overloaded { queue_depth } => {
                write!(f, "shed: admission queue full ({queue_depth} queued)")
            }
            Rejected::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded at stage {stage:?}")
            }
            Rejected::Failed { error } => write!(f, "query failed: {error}"),
            Rejected::Panicked { message } => {
                write!(f, "query panicked (isolated): {message}")
            }
            Rejected::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for Rejected {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Rejected::Failed { error } => Some(error),
            _ => None,
        }
    }
}

struct Job {
    query: Query,
    k: usize,
    /// Admission time: answered queries record end-to-end latency from
    /// here, so queue wait shows up in the histogram (tail latency under
    /// load is mostly queueing; measuring from dequeue would hide it).
    submitted_at: Instant,
    deadline: Instant,
    seq: u64,
    reply: mpsc::Sender<Result<SearchResponse, Rejected>>,
}

struct Shared {
    /// The static index image; `None` in live (incremental) mode.
    index: Option<Arc<InvertedIndex>>,
    /// The crash-safe incremental index; `Some` in live mode, where it
    /// both serves queries and accepts [`QueryService::ingest`] while the
    /// worker pool is running.
    live: Option<Arc<LiveIndex>>,
    cfg: ServeConfig,
    queue: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
    shutdown: AtomicBool,
    stats: ServeStats,
    breaker: CircuitBreaker,
    seq: AtomicU64,
    /// Shard fan-out engine for the CPU-fallback path when
    /// `cfg.shards > 1`. One shard pool shared by every serve worker
    /// (`search_ref` takes `&self`); `None` keeps the unsharded fallback.
    sharded: Option<ShardedSearchEngine>,
}

/// Locks a mutex, recovering from poisoning. Queue contents are plain
/// data pushed/popped atomically under the lock, so a poisoned guard
/// cannot expose a half-updated queue.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An admitted query waiting for its answer.
#[derive(Debug)]
pub struct PendingQuery {
    rx: mpsc::Receiver<Result<SearchResponse, Rejected>>,
}

impl PendingQuery {
    /// Blocks until the query resolves.
    pub fn wait(self) -> Result<SearchResponse, Rejected> {
        // A dropped sender means the pool died mid-query; surface it as a
        // shutdown rather than panicking the caller.
        self.rx.recv().unwrap_or(Err(Rejected::ShuttingDown))
    }
}

/// Multi-worker query service over a shared [`InvertedIndex`].
pub struct QueryService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Starts `cfg.workers` worker threads serving `index`.
    ///
    /// `cfg.cores_per_query` is clamped to `1..=cfg.sim.n_cores` so a
    /// misconfigured pool cannot panic the simulator's allocator.
    pub fn start(index: Arc<InvertedIndex>, mut cfg: ServeConfig) -> Self {
        Self::normalize(&mut cfg);
        // Splitting a valid index cannot fail for shards >= 1; if it ever
        // does, serving unsharded is strictly better than refusing to
        // start (same results, just no fan-out).
        let sharded = (cfg.shards > 1)
            .then(|| {
                iiu_core::ShardedIndex::split(&index, cfg.shards).ok().map(|s| {
                    ShardedSearchEngine::with_config(Arc::new(s), cfg.shard_pool)
                        .with_pruning(cfg.pruned_cpu_fallback)
                        .with_fail_closed(cfg.fail_closed_shards)
                        .with_chaos(cfg.shard_chaos.clone())
                })
            })
            .flatten();
        Self::spawn(Some(index), None, cfg, sharded)
    }

    /// Starts `cfg.workers` worker threads serving a crash-safe
    /// [`LiveIndex`]: queries answer from sealed segments unioned with
    /// the in-memory write buffer, and [`QueryService::ingest`] accepts
    /// documents while serving.
    ///
    /// Live mode serves on the CPU union path only — the device
    /// simulation and shard fan-out operate on a static index image, so
    /// the breaker and retry machinery are bypassed. Hits remain
    /// bit-identical to every other engine over the same documents.
    pub fn start_live(live: Arc<LiveIndex>, mut cfg: ServeConfig) -> Self {
        Self::normalize(&mut cfg);
        Self::spawn(None, Some(live), cfg, None)
    }

    fn normalize(cfg: &mut ServeConfig) {
        cfg.workers = cfg.workers.max(1);
        cfg.queue_capacity = cfg.queue_capacity.max(1);
        cfg.cores_per_query = cfg.cores_per_query.clamp(1, cfg.sim.n_cores.max(1));
        cfg.shards = cfg.shards.max(1);
        cfg.scheduler.admission_batch = cfg.scheduler.admission_batch.max(1);
        // A shard pool without a fan-out deadline could hang the
        // coordinator on a wedged worker; default it to the query
        // deadline so every fan-out resolves in bounded time.
        if cfg.shard_pool.deadline.is_none() {
            cfg.shard_pool.deadline = Some(cfg.default_deadline);
        }
    }

    fn spawn(
        index: Option<Arc<InvertedIndex>>,
        live: Option<Arc<LiveIndex>>,
        cfg: ServeConfig,
        sharded: Option<ShardedSearchEngine>,
    ) -> Self {
        let breaker = CircuitBreaker::new(cfg.breaker);
        let shared = Arc::new(Shared {
            index,
            live,
            cfg,
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: ServeStats::default(),
            breaker,
            seq: AtomicU64::new(0),
            sharded,
        });
        let workers = (0..shared.cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("iiu-serve-{i}"))
                    .spawn(move || worker_loop(&shared, i as u64))
                    .unwrap_or_else(|e| panic!("spawning serve worker {i}: {e}"))
            })
            .collect();
        QueryService { shared, workers }
    }

    /// The live index handle, when started with
    /// [`QueryService::start_live`].
    pub fn live(&self) -> Option<&Arc<LiveIndex>> {
        self.shared.live.as_ref()
    }

    /// Ingests a batch into the live index (durable on return — WAL
    /// appended and fsynced before acknowledgment). Returns the assigned
    /// global doc-id range.
    ///
    /// # Errors
    ///
    /// Returns a typed error when the service was not started in live
    /// mode, or when the write path fails.
    pub fn ingest(&self, docs: &[IngestDoc]) -> Result<std::ops::Range<u64>, IndexError> {
        match &self.shared.live {
            Some(live) => live.ingest_batch(docs),
            None => Err(IndexError::CorruptIndex {
                context: "ingest requires a service started in live mode",
            }),
        }
    }

    /// Submits a query under the configured default deadline. Returns
    /// immediately: `Err` is an admission-time shed, `Ok` a handle to
    /// wait on.
    pub fn submit(&self, query: Query, k: usize) -> Result<PendingQuery, Rejected> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(Rejected::ShuttingDown);
        }
        let stats = &self.shared.stats;
        let now = Instant::now();
        let deadline = now + self.shared.cfg.default_deadline;
        let (tx, rx) = mpsc::channel();
        {
            let mut q = lock(&self.shared.queue);
            // Re-checked under the queue lock: workers only exit after
            // observing (queue empty && shutdown) under this same lock, so
            // a submit racing with shutdown() cannot enqueue a job no
            // worker will ever pick up (which would block wait() forever).
            if self.shared.shutdown.load(Ordering::Acquire) {
                return Err(Rejected::ShuttingDown);
            }
            stats.submitted.fetch_add(1, Ordering::Relaxed);
            if q.len() >= self.shared.cfg.queue_capacity {
                stats.shed_overload.fetch_add(1, Ordering::Relaxed);
                return Err(Rejected::Overloaded { queue_depth: q.len() });
            }
            // Sequence numbers count *admitted* queries only, so
            // FaultPlan windows keyed on seq target queries that actually
            // reach a worker regardless of how many submissions shed.
            let job = Job {
                query,
                k,
                submitted_at: now,
                deadline,
                seq: self.shared.seq.fetch_add(1, Ordering::Relaxed),
                reply: tx,
            };
            q.push_back(job);
        }
        self.shared.not_empty.notify_one();
        Ok(PendingQuery { rx })
    }

    /// Submits and blocks for the answer.
    pub fn search_blocking(&self, query: Query, k: usize) -> Result<SearchResponse, Rejected> {
        self.submit(query, k)?.wait()
    }

    /// Point-in-time operator snapshot.
    pub fn health(&self) -> HealthSnapshot {
        let s = &self.shared.stats;
        HealthSnapshot {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            degraded_ok: s.degraded_ok.load(Ordering::Relaxed),
            shed_overload: s.shed_overload.load(Ordering::Relaxed),
            shed_deadline: s.shed_deadline.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            panicked: s.panicked.load(Ordering::Relaxed),
            retries: s.retries.load(Ordering::Relaxed),
            cpu_fallbacks: s.cpu_fallbacks.load(Ordering::Relaxed),
            fallback_candidates: s.fallback_candidates.load(Ordering::Relaxed),
            fallback_modeled_ns: s.fallback_modeled_ns.load(Ordering::Relaxed),
            shards: self.shared.cfg.shards,
            shard_docs_scored: self
                .shared
                .sharded
                .as_ref()
                .map(|e| e.inner().shard_loads())
                .unwrap_or_default(),
            shard_partials: s.shard_partials.load(Ordering::Relaxed),
            shard_rescues: s.shard_rescues.load(Ordering::Relaxed),
            sched_inline: s.sched_inline.load(Ordering::Relaxed),
            sched_fanout: s.sched_fanout.load(Ordering::Relaxed),
            shard_health: self
                .shared
                .sharded
                .as_ref()
                .map(|e| e.inner().pool().supervision())
                .unwrap_or_default(),
            pool_workers: self
                .shared
                .sharded
                .as_ref()
                .map(|e| e.inner().pool().worker_reports())
                .unwrap_or_default(),
            breaker: self.shared.breaker.state(),
            breaker_trips: self.shared.breaker.trips(),
            breaker_recoveries: self.shared.breaker.recoveries(),
            p50: s.latency_quantile_estimate(0.5),
            p99: s.latency_quantile_estimate(0.99),
            p999: s.latency_quantile_estimate(0.999),
            queue_depth: lock(&self.shared.queue).len(),
        }
    }

    /// Stops admitting queries, drains everything already admitted, and
    /// joins the workers. Called automatically on drop.
    pub fn shutdown(&mut self) {
        // The flag must flip while holding the queue lock: an idle worker
        // re-checks `shutdown` under this lock right before parking on
        // `not_empty`, so an unlocked store + notify could land in that
        // window — the notification is lost, the worker parks forever,
        // and the join below deadlocks. Holding the lock pins each worker
        // on one side of the race: either it has not re-checked yet (and
        // will observe the flag), or it is already parked (and will
        // receive the notify issued after the lock drops).
        {
            let _q = lock(&self.shared.queue);
            self.shared.shutdown.store(true, Ordering::Release);
        }
        self.shared.not_empty.notify_all();
        for h in self.workers.drain(..) {
            // A worker that somehow panicked outside a query's
            // catch_unwind has nothing left to deliver; joining it is
            // best-effort.
            let _ = h.join();
        }
        // Belt and braces: the in-lock shutdown re-check in submit()
        // prevents jobs landing after the last worker exits, but if one
        // ever did (or a worker died outside catch_unwind), resolve it
        // rather than leaving its caller blocked in wait().
        let mut q = lock(&self.shared.queue);
        while let Some(job) = q.pop_front() {
            let _ = job.reply.send(Err(Rejected::ShuttingDown));
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Outcome of the device-path attempt loop.
enum DeviceOutcome {
    /// Device answered; `attempts` includes the successful one.
    Ok { response: SearchResponse, attempts: u32 },
    /// All attempts failed; fall back to the CPU for `reason`.
    GiveUp { reason: String },
    /// The deadline expired between attempts.
    Deadline,
}

fn worker_loop(shared: &Shared, worker_id: u64) {
    // Per-worker jitter stream, decorrelated across workers and runs.
    let mut rng =
        SplitMix64::new(shared.cfg.fault.seed ^ worker_id.wrapping_mul(0xA076_1D64_78BD_642F));
    let batch_cap = shared.cfg.scheduler.admission_batch.max(1);
    let workers = shared.cfg.workers.max(1);
    let min_slack = shared.cfg.scheduler.min_slack;
    loop {
        // Batched admission: drain up to `admission_batch` jobs in one
        // lock acquisition, but never more than this worker's fair share
        // of the backlog — batching amortizes lock traffic under
        // overload without serializing a shallow queue behind one worker.
        let batch: Vec<Job> = {
            let mut q = lock(&shared.queue);
            loop {
                if !q.is_empty() {
                    let fair = q.len().div_ceil(workers);
                    let n = fair.clamp(1, batch_cap);
                    break q.drain(..n).collect();
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = shared
                    .not_empty
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        for job in batch {
            // Slack shedding: a job without `min_slack` of runway left
            // would miss its deadline mid-execution anyway — rejecting
            // it now costs nothing and keeps the doomed work from
            // snowballing the backlog. ZERO slack degenerates to the
            // already-expired check `serve_one` performs itself.
            if !min_slack.is_zero()
                && job.deadline.saturating_duration_since(Instant::now()) < min_slack
            {
                shared.stats.shed_deadline.fetch_add(1, Ordering::Relaxed);
                let _ = job.reply.send(Err(Rejected::DeadlineExceeded { stage: "queue" }));
                continue;
            }
            serve_one(shared, job, &mut rng);
        }
    }
}

fn serve_one(shared: &Shared, job: Job, rng: &mut SplitMix64) {
    let started = Instant::now();
    let stats = &shared.stats;
    if started >= job.deadline {
        stats.shed_deadline.fetch_add(1, Ordering::Relaxed);
        let _ = job.reply.send(Err(Rejected::DeadlineExceeded { stage: "queue" }));
        return;
    }

    // Live mode: serve from the incremental index (segments ∪ buffer) on
    // the CPU union path, panic-isolated like every other engine run. The
    // breaker/device machinery is bypassed — it routes between engines
    // over the static image, which live mode does not have.
    if let Some(live) = &shared.live {
        let result = panic::catch_unwind(AssertUnwindSafe(|| live.search(&job.query, job.k)));
        let (response, outcome_err) = match result {
            Ok(Ok(resp)) => (Some(resp), None),
            Ok(Err(error)) => (None, Some(Rejected::Failed { error })),
            Err(payload) => {
                stats.panicked.fetch_add(1, Ordering::Relaxed);
                (None, Some(Rejected::Panicked { message: panic_message(payload.as_ref()) }))
            }
        };
        finish_one(shared, &job, response, outcome_err);
        return;
    }

    let route = shared.breaker.route();
    let (mut response, outcome_err) = match route {
        Route::Device { probe } => match run_device(shared, &job, rng) {
            DeviceOutcome::Ok { mut response, attempts } => {
                shared.breaker.on_success(probe);
                if attempts > 1 {
                    stats.retries.fetch_add(u64::from(attempts - 1), Ordering::Relaxed);
                    response.degraded.push(Degradation::Retried { attempts });
                }
                (Some(response), None)
            }
            DeviceOutcome::Deadline => {
                // The device never got a verdict; don't charge the breaker
                // either way — but a held probe slot must be released or
                // the breaker would stick in HalfOpen forever.
                shared.breaker.on_abandoned(probe);
                stats.shed_deadline.fetch_add(1, Ordering::Relaxed);
                let _ = job.reply.send(Err(Rejected::DeadlineExceeded { stage: "retry" }));
                return;
            }
            DeviceOutcome::GiveUp { reason } => {
                shared.breaker.on_failure(probe);
                match run_fallback(shared, &job, reason) {
                    Ok(resp) => (Some(resp), None),
                    Err(rej) => (None, Some(rej)),
                }
            }
        },
        Route::Fallback => {
            match run_fallback(shared, &job, "circuit breaker open".to_string()) {
                Ok(resp) => (Some(resp), None),
                Err(rej) => (None, Some(rej)),
            }
        }
    };

    let response = response.take();
    finish_one(shared, &job, response, outcome_err);
}

/// Shared tail of [`serve_one`]: accounts the outcome and replies.
fn finish_one(
    shared: &Shared,
    job: &Job,
    response: Option<SearchResponse>,
    outcome_err: Option<Rejected>,
) {
    let stats = &shared.stats;
    match (response, outcome_err) {
        (Some(resp), _) => {
            if resp.degraded.is_empty() {
                stats.completed.fetch_add(1, Ordering::Relaxed);
            } else {
                stats.degraded_ok.fetch_add(1, Ordering::Relaxed);
            }
            if resp.degraded.iter().any(|d| matches!(d, Degradation::ShardsUnavailable { .. }))
            {
                stats.shard_partials.fetch_add(1, Ordering::Relaxed);
            }
            stats.record_latency(job.submitted_at.elapsed());
            let _ = job.reply.send(Ok(resp));
        }
        (None, Some(rej)) => {
            match &rej {
                Rejected::DeadlineExceeded { .. } => {
                    stats.shed_deadline.fetch_add(1, Ordering::Relaxed);
                }
                // Panicked still counts as `failed` so that
                // answered + shed + failed == submitted holds exactly.
                _ => {
                    stats.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
            let _ = job.reply.send(Err(rej));
        }
        (None, None) => unreachable!("every query resolves to a response or a rejection"),
    }
}

fn run_device(shared: &Shared, job: &Job, rng: &mut SplitMix64) -> DeviceOutcome {
    let cfg = &shared.cfg;
    for attempt in 0..cfg.retry.max_attempts.max(1) {
        if Instant::now() >= job.deadline {
            return DeviceOutcome::Deadline;
        }
        // Sabotaged attempts run with a 1-cycle budget so the watchdog
        // reports `SimError::Stalled` deterministically; clean attempts
        // (including every retry outside a fault burst) use the real
        // config — the "fresh SimConfig" the retry contract promises.
        let sim = if cfg.fault.sabotage(job.seq, attempt) {
            SimConfig { max_cycles: Some(1), ..cfg.sim }
        } else {
            cfg.sim
        };
        // Unreachable in live mode (serve_one branches first), but a
        // typed give-up beats an unwrap if that invariant ever breaks.
        let Some(index) = shared.index.as_deref() else {
            return DeviceOutcome::GiveUp {
                reason: "no static index (live mode)".to_string(),
            };
        };
        let attempt_result = panic::catch_unwind(AssertUnwindSafe(|| {
            if cfg.fault.sabotage_panic(job.seq, attempt) {
                panic!("injected panic fault (seq {})", job.seq);
            }
            let mut engine = IiuSearchEngine::with_config(index, sim, cfg.cores_per_query);
            engine.search(&job.query, job.k)
        }));
        match attempt_result {
            Ok(Ok(response)) => return DeviceOutcome::Ok { response, attempts: attempt + 1 },
            Ok(Err(e)) if e.is_transient() && attempt + 1 < cfg.retry.max_attempts => {
                let sleep = cfg.retry.backoff(attempt + 1, rng);
                let remaining = job.deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return DeviceOutcome::Deadline;
                }
                std::thread::sleep(sleep.min(remaining));
            }
            Ok(Err(e)) => {
                let transient = e.is_transient();
                let reason = if transient {
                    format!("device retries exhausted after {} attempts: {e}", attempt + 1)
                } else {
                    format!("device error: {e}")
                };
                // Trim the reason: a stall snapshot Display is multi-line.
                let reason = reason.lines().next().unwrap_or("device error").to_string();
                return DeviceOutcome::GiveUp { reason };
            }
            Err(payload) => {
                shared.stats.panicked.fetch_add(1, Ordering::Relaxed);
                let message = panic_message(payload.as_ref());
                return DeviceOutcome::GiveUp {
                    reason: format!("device panicked: {message}"),
                };
            }
        }
    }
    // max_attempts == 0 is normalized to 1 above; unreachable in practice
    // but a typed answer is still better than a panic.
    DeviceOutcome::GiveUp { reason: "retry budget exhausted".to_string() }
}

fn run_fallback(
    shared: &Shared,
    job: &Job,
    reason: String,
) -> Result<SearchResponse, Rejected> {
    if Instant::now() >= job.deadline {
        return Err(Rejected::DeadlineExceeded { stage: "fallback" });
    }
    shared.stats.cpu_fallbacks.fetch_add(1, Ordering::Relaxed);
    let Some(index) = shared.index.as_deref() else {
        // Unreachable in live mode (serve_one branches first); answer
        // with a typed failure rather than panicking a worker.
        return Err(Rejected::Failed {
            error: SearchError::Index(IndexError::CorruptIndex {
                context: "no static index to fall back to (live mode)",
            }),
        });
    };
    // Hybrid scheduling (§4.4): price the query from document
    // frequencies and only pay the shard fan-out tax when its longest
    // postings list clears the heavy threshold; cheap queries answer
    // inline on this worker (inter-query style), leaving the pool to the
    // queries that actually scale with it. With the scheduler off every
    // sharded query fans out, exactly as before.
    let fan_out = shared.sharded.is_some()
        && (!shared.cfg.scheduler.hybrid
            || crate::scheduler::route(index, &job.query, &shared.cfg.scheduler).mode
                == crate::scheduler::ParallelismMode::IntraQuery);
    if shared.sharded.is_some() {
        if fan_out {
            shared.stats.sched_fanout.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.stats.sched_inline.fetch_add(1, Ordering::Relaxed);
        }
    }
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        // Sharded fan-out when configured (intra-query parallelism, same
        // hits); otherwise the plain single-threaded baseline. The shard
        // pool is shared across serve workers, so the engine is queried
        // through &self.
        match shared.sharded.as_ref().filter(|_| fan_out) {
            Some(engine) => engine.search_ref(&job.query, job.k).or_else(|e| {
                // Last-resort rescue: a total shard outage (every shard
                // quarantined/wedged at once) or a fail-closed partial
                // answer errors out of the fan-out, but the full index is
                // still resident — answering unsharded (slower, complete
                // coverage) beats failing the query. A genuinely bad query
                // fails identically here and surfaces its real error.
                shared.stats.shard_rescues.fetch_add(1, Ordering::Relaxed);
                let mut unsharded =
                    CpuSearchEngine::new(index).with_pruning(shared.cfg.pruned_cpu_fallback);
                unsharded.search(&job.query, job.k).map(|mut resp| {
                    resp.degraded.push(Degradation::CpuFallback {
                        reason: format!("shard fan-out unavailable: {e}"),
                    });
                    resp
                })
            }),
            None => {
                let mut engine =
                    CpuSearchEngine::new(index).with_pruning(shared.cfg.pruned_cpu_fallback);
                engine.search(&job.query, job.k)
            }
        }
    }));
    match result {
        Ok(Ok(mut response)) => {
            // Keep the CPU outcome's work accounting instead of dropping
            // it with the response wrapper: operators see how much index
            // work the fallback absorbed.
            shared.stats.fallback_candidates.fetch_add(response.candidates, Ordering::Relaxed);
            shared
                .stats
                .fallback_modeled_ns
                .fetch_add(response.latency_ns() as u64, Ordering::Relaxed);
            response.degraded.push(Degradation::CpuFallback { reason });
            Ok(response)
        }
        Ok(Err(error)) => Err(Rejected::Failed { error }),
        Err(payload) => {
            shared.stats.panicked.fetch_add(1, Ordering::Relaxed);
            Err(Rejected::Panicked { message: panic_message(payload.as_ref()) })
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejected_is_a_full_error() {
        // The full bound callers need to box and send across threads.
        fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<Rejected>();

        let e = Rejected::Failed {
            error: iiu_core::SearchError::Index(iiu_index::IndexError::PositionsUnavailable),
        };
        assert!(std::error::Error::source(&e).is_some(), "Failed must expose its cause");
        let boxed: Box<dyn std::error::Error + Send + Sync + 'static> = Box::new(e);
        assert!(boxed.to_string().contains("failed"));
    }

    #[test]
    fn rejection_displays_are_operator_readable() {
        assert!(Rejected::Overloaded { queue_depth: 7 }.to_string().contains('7'));
        assert!(Rejected::DeadlineExceeded { stage: "queue" }.to_string().contains("queue"));
        assert!(Rejected::ShuttingDown.to_string().contains("shutting down"));
        assert!(Rejected::Panicked { message: "boom".into() }.to_string().contains("boom"));
    }
}
