//! Per-query parallelism routing: the paper's §4.4 hybrid scheduling.
//!
//! A sharded CPU path has two ways to spend its pool: **intra-query**
//! (one query fans across every shard, minimizing that query's latency)
//! and **inter-query** (each query stays on one execution lane,
//! maximizing concurrent throughput). Fan-out is not free — every shard
//! task pays enqueue, wakeup, and merge overhead — so below a certain
//! postings volume the fan-out tax exceeds the parallel speedup and a
//! query is better served inline.
//!
//! The router prices a query from document frequencies alone
//! ([`iiu_core::estimate_query_cost`]: O(terms) dictionary reads, never a
//! postings list) and compares the longest list against
//! [`SchedulerConfig::heavy_df_threshold`]. The default threshold is
//! [`iiu_core::HEAVY_DF_THRESHOLD`], the `shard_bench` calibration point
//! where the 4-shard scaling gate measures its speedup.

use iiu_core::{estimate_query_cost, InvertedIndex, Query, QueryCostEstimate};

use crate::config::SchedulerConfig;

/// How one query should spend the sharded CPU path's parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelismMode {
    /// Answer on the calling worker against the unsharded index: no
    /// fan-out tax, and the shard pool stays free for heavy queries.
    InterQuery,
    /// Fan out across every shard of the pool (the fixed topology's
    /// only mode).
    IntraQuery,
}

/// The routing decision plus the estimate that produced it, so
/// operators and benches can audit why a query ran where it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Where the query runs.
    pub mode: ParallelismMode,
    /// The df-derived cost estimate behind the decision.
    pub estimate: QueryCostEstimate,
}

/// Routes `query` under `cfg`. With `cfg.hybrid` off this is the fixed
/// topology: every query fans out. With it on, only queries whose
/// longest postings list reaches `cfg.heavy_df_threshold` documents pay
/// for fan-out; the rest run inline. Either way the hits are
/// bit-identical — only the work placement changes.
pub fn route(index: &InvertedIndex, query: &Query, cfg: &SchedulerConfig) -> RouteDecision {
    let estimate = estimate_query_cost(index, &query.terms());
    let mode = if !cfg.hybrid || estimate.is_heavy(cfg.heavy_df_threshold) {
        ParallelismMode::IntraQuery
    } else {
        ParallelismMode::InterQuery
    };
    RouteDecision { mode, estimate }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_index() -> InvertedIndex {
        let mut b = iiu_index::IndexBuilder::new(iiu_index::BuildOptions::default());
        for i in 0..128 {
            // "common" in every doc, "rare" in one.
            let rare = if i == 0 { " rare" } else { "" };
            b.add_document(&format!("common filler{i}{rare}"));
        }
        b.build()
    }

    #[test]
    fn fixed_topology_always_fans_out() {
        let idx = tiny_index();
        let cfg =
            SchedulerConfig { hybrid: false, heavy_df_threshold: 1, ..Default::default() };
        for text in ["rare", "common", "rare AND common"] {
            let q = Query::parse(text).unwrap();
            assert_eq!(route(&idx, &q, &cfg).mode, ParallelismMode::IntraQuery, "{text}");
        }
    }

    #[test]
    fn hybrid_routes_by_longest_list() {
        let idx = tiny_index();
        let cfg =
            SchedulerConfig { hybrid: true, heavy_df_threshold: 100, ..Default::default() };
        let rare = Query::parse("rare").unwrap();
        let common = Query::parse("common").unwrap();
        let mixed = Query::parse("rare AND common").unwrap();

        let d = route(&idx, &rare, &cfg);
        assert_eq!(d.mode, ParallelismMode::InterQuery);
        assert_eq!(d.estimate.max_list_postings, 1);

        let d = route(&idx, &common, &cfg);
        assert_eq!(d.mode, ParallelismMode::IntraQuery);
        assert_eq!(d.estimate.max_list_postings, 128);

        // One heavy list anywhere in the query is enough: the longest
        // list bounds the slowest shard task.
        assert_eq!(route(&idx, &mixed, &cfg).mode, ParallelismMode::IntraQuery);
    }

    #[test]
    fn unknown_terms_are_cheap() {
        let idx = tiny_index();
        let cfg =
            SchedulerConfig { hybrid: true, heavy_df_threshold: 1, ..Default::default() };
        let q = Query::parse("zzzneverindexed").unwrap();
        let d = route(&idx, &q, &cfg);
        assert_eq!(d.mode, ParallelismMode::InterQuery);
        assert_eq!(d.estimate.resolved_terms, 0);
    }
}
