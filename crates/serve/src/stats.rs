//! Lock-free serving statistics: outcome counters and a log₂ latency
//! histogram, snapshotted into a [`HealthSnapshot`] for operators.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::breaker::BreakerState;

/// Number of log₂ latency buckets. Bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` microseconds; the last bucket is open-ended, covering
/// everything from 2⁴³ µs (≈101 days) up.
const BUCKETS: usize = 44;

/// Shared, lock-free counters updated by admission and workers.
#[derive(Debug)]
pub struct ServeStats {
    /// Queries offered to the service (accepted or not).
    pub submitted: AtomicU64,
    /// Queries answered with hits from the device path, no degradation.
    pub completed: AtomicU64,
    /// Queries answered with hits but carrying a degradation record
    /// (CPU fallback, retries, pruned unknown terms).
    pub degraded_ok: AtomicU64,
    /// Queries shed at admission because the queue was full.
    pub shed_overload: AtomicU64,
    /// Queries rejected because their deadline expired (at admission, in
    /// queue, or mid-pipeline).
    pub shed_deadline: AtomicU64,
    /// Queries that failed permanently with a typed error.
    pub failed: AtomicU64,
    /// Queries that panicked under `catch_unwind` on either path — a
    /// device attempt (the query then fell back) or the CPU fallback
    /// (the query became `Rejected::Panicked`). The worker survived
    /// either way.
    pub panicked: AtomicU64,
    /// Device attempts beyond the first, summed over all queries.
    pub retries: AtomicU64,
    /// Queries answered by the CPU baseline instead of the device.
    pub cpu_fallbacks: AtomicU64,
    /// Candidate documents scanned by CPU-fallback answers. The fallback
    /// path keeps (not drops) the baseline's work accounting, so operators
    /// can see how much index work the CPU absorbed while the device was
    /// unhealthy.
    pub fallback_candidates: AtomicU64,
    /// Modeled nanoseconds of CPU work spent by fallback answers.
    pub fallback_modeled_ns: AtomicU64,
    /// Answers served with partial shard coverage (the response carried
    /// [`iiu_core::Degradation::ShardsUnavailable`]).
    pub shard_partials: AtomicU64,
    /// Queries rescued by the unsharded CPU engine after the shard
    /// fan-out errored outright (total shard outage, or fail-closed
    /// partial coverage).
    pub shard_rescues: AtomicU64,
    /// Sharded-path queries the hybrid scheduler ran inline on the serve
    /// worker (inter-query mode — estimated too cheap to pay the
    /// fan-out tax).
    pub sched_inline: AtomicU64,
    /// Sharded-path queries fanned out across every shard (intra-query
    /// mode; with the scheduler off this counts every sharded query).
    pub sched_fanout: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            degraded_ok: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            cpu_fallbacks: AtomicU64::new(0),
            fallback_candidates: AtomicU64::new(0),
            fallback_modeled_ns: AtomicU64::new(0),
            shard_partials: AtomicU64::new(0),
            shard_rescues: AtomicU64::new(0),
            sched_inline: AtomicU64::new(0),
            sched_fanout: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn bucket_of(latency: Duration) -> usize {
    let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
    if us == 0 {
        return 0;
    }
    (63 - us.leading_zeros() as usize).min(BUCKETS - 1)
}

/// A latency quantile extracted from the log₂-µs histogram.
///
/// The histogram's top bucket is open-ended, so a quantile landing there
/// has no upper edge to interpolate toward — earlier code silently
/// reported a finite "edge" for it, making p999 under heavy tail mass a
/// lower bound that *looked* exact. The flag makes that explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantile {
    /// The estimate: linearly interpolated within the containing bucket
    /// (or the bucket's lower edge when [`Self::is_lower_bound`]).
    pub value: Duration,
    /// True when the rank fell in the open-ended top bucket: `value` is
    /// then the true quantile's floor, not an estimate of it.
    pub is_lower_bound: bool,
}

impl std::fmt::Display for Quantile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_lower_bound {
            write!(f, "≥{:?}", self.value)
        } else {
            write!(f, "{:?}", self.value)
        }
    }
}

/// Extracts quantile `q` (clamped to `0.0..=1.0`) from log₂-µs bucket
/// counts: bucket `i` spans `[2^i, 2^(i+1))` µs (bucket 0 starts at 0)
/// and the last bucket is open-ended. The rank is interpolated linearly
/// within its bucket; a rank in the last bucket yields the bucket's
/// lower edge flagged [`Quantile::is_lower_bound`]. `None` when the
/// histogram is empty.
pub fn quantile_from_counts(counts: &[u64], q: f64) -> Option<Quantile> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if seen + c >= rank {
            let lo = if i == 0 { 0.0 } else { 2f64.powi(i as i32) };
            if i == counts.len() - 1 {
                return Some(Quantile {
                    value: Duration::from_secs_f64(lo / 1e6),
                    is_lower_bound: true,
                });
            }
            let hi = 2f64.powi(i as i32 + 1);
            let frac = (rank - seen) as f64 / c as f64;
            return Some(Quantile {
                value: Duration::from_secs_f64((lo + frac * (hi - lo)) / 1e6),
                is_lower_bound: false,
            });
        }
        seen += c;
    }
    None
}

impl ServeStats {
    /// Records the end-to-end latency of one answered query.
    pub fn record_latency(&self, latency: Duration) {
        self.buckets[bucket_of(latency)].fetch_add(1, Ordering::Relaxed);
    }

    /// A snapshot of the raw latency bucket counts (log₂-µs buckets).
    pub fn latency_buckets(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Latency quantile `q` in `0.0..=1.0`, as the upper edge of the
    /// bucket containing it (log₂-µs resolution). For the open-ended top
    /// bucket the reported 2⁴⁴ µs "edge" is a lower bound, not an upper
    /// one. Prefer [`Self::latency_quantile_estimate`], which
    /// interpolates within the bucket and makes the lower-bound case
    /// explicit; this coarser form is kept for callers wanting a
    /// guaranteed-conservative (upper-edge) figure.
    pub fn latency_quantile(&self, q: f64) -> Option<Duration> {
        let counts = self.latency_buckets();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Duration::from_micros(2u64.saturating_pow(i as u32 + 1)));
            }
        }
        Some(Duration::from_micros(u64::MAX))
    }

    /// Latency quantile `q`, interpolated within its bucket and flagged
    /// when it is only a lower bound (see [`quantile_from_counts`]).
    pub fn latency_quantile_estimate(&self, q: f64) -> Option<Quantile> {
        quantile_from_counts(&self.latency_buckets(), q)
    }

    /// Queries that were answered with hits (clean or degraded).
    pub fn answered(&self) -> u64 {
        self.completed.load(Ordering::Relaxed) + self.degraded_ok.load(Ordering::Relaxed)
    }

    /// Queries resolved as a typed rejection rather than hits.
    pub fn rejected(&self) -> u64 {
        self.shed_overload.load(Ordering::Relaxed)
            + self.shed_deadline.load(Ordering::Relaxed)
            + self.failed.load(Ordering::Relaxed)
    }
}

/// Point-in-time operator view of the service.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// Queries offered so far.
    pub submitted: u64,
    /// Clean device-path answers.
    pub completed: u64,
    /// Degraded answers (fallback / retried / pruned terms).
    pub degraded_ok: u64,
    /// Shed at admission (queue full).
    pub shed_overload: u64,
    /// Rejected on deadline.
    pub shed_deadline: u64,
    /// Permanent typed failures.
    pub failed: u64,
    /// Isolated query panics (device attempt or CPU fallback).
    pub panicked: u64,
    /// Extra device attempts.
    pub retries: u64,
    /// CPU-baseline answers.
    pub cpu_fallbacks: u64,
    /// Candidate documents scanned by CPU-fallback answers.
    pub fallback_candidates: u64,
    /// Modeled nanoseconds of CPU work spent by fallback answers.
    pub fallback_modeled_ns: u64,
    /// Document shards the CPU fallback fans out across (1 = unsharded).
    pub shards: usize,
    /// Cumulative documents scored per shard (empty when unsharded) — the
    /// operator's load-balance view.
    pub shard_docs_scored: Vec<u64>,
    /// Answers served with partial shard coverage (truthfully labeled via
    /// `Degradation::ShardsUnavailable`).
    pub shard_partials: u64,
    /// Queries rescued by the unsharded CPU engine after the shard
    /// fan-out errored outright.
    pub shard_rescues: u64,
    /// Sharded-path queries routed inline (inter-query) by the hybrid
    /// scheduler.
    pub sched_inline: u64,
    /// Sharded-path queries fanned out across every shard (intra-query).
    pub sched_fanout: u64,
    /// Per-shard supervision state and counters (failures, quarantine
    /// trips); empty when unsharded.
    pub shard_health: Vec<iiu_core::ShardHealthReport>,
    /// Worker-plane liveness for the shared shard-task pool (tasks
    /// completed, respawns per worker slot); empty when unsharded.
    pub pool_workers: Vec<iiu_core::PoolWorkerReport>,
    /// Breaker state at snapshot time.
    pub breaker: BreakerState,
    /// Breaker trips so far.
    pub breaker_trips: u64,
    /// Breaker recoveries so far.
    pub breaker_recoveries: u64,
    /// Median end-to-end answer latency (admission → reply, queue wait
    /// included; interpolated), if any were recorded.
    pub p50: Option<Quantile>,
    /// 99th-percentile answer latency (interpolated), if any were
    /// recorded.
    pub p99: Option<Quantile>,
    /// 99.9th-percentile answer latency. Under heavy tail mass this may
    /// land in the histogram's open-ended top bucket, in which case
    /// [`Quantile::is_lower_bound`] is set rather than silently
    /// reporting a finite value.
    pub p999: Option<Quantile>,
    /// Current depth of the admission queue.
    pub queue_depth: usize,
}

impl HealthSnapshot {
    /// Queries answered with hits (clean or degraded).
    pub fn answered(&self) -> u64 {
        self.completed + self.degraded_ok
    }

    /// Queries resolved as a typed rejection rather than hits.
    pub fn rejected_total(&self) -> u64 {
        self.shed_overload + self.shed_deadline + self.failed
    }

    /// Fraction of submitted queries shed or rejected, in `0.0..=1.0`.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        (self.shed_overload + self.shed_deadline + self.failed) as f64 / self.submitted as f64
    }
}

impl std::fmt::Display for HealthSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "submitted={} completed={} degraded={} shed(overload={} deadline={}) \
             failed={} panicked={}",
            self.submitted,
            self.completed,
            self.degraded_ok,
            self.shed_overload,
            self.shed_deadline,
            self.failed,
            self.panicked,
        )?;
        writeln!(
            f,
            "retries={} cpu_fallbacks={} fallback_candidates={} breaker={} trips={} \
             recoveries={} queue_depth={}",
            self.retries,
            self.cpu_fallbacks,
            self.fallback_candidates,
            self.breaker,
            self.breaker_trips,
            self.breaker_recoveries,
            self.queue_depth,
        )?;
        if self.shards > 1 {
            writeln!(
                f,
                "shards={} partial_answers={} rescues={} sched(inline={} fanout={}) \
                 docs_scored_per_shard={:?}",
                self.shards,
                self.shard_partials,
                self.shard_rescues,
                self.sched_inline,
                self.sched_fanout,
                self.shard_docs_scored
            )?;
            for h in &self.shard_health {
                writeln!(
                    f,
                    "  shard {}: {} failures={} (panics={} timeouts={}) \
                     quarantine(trips={} recoveries={})",
                    h.shard,
                    h.health,
                    h.failures,
                    h.panics,
                    h.timeouts,
                    h.quarantine_trips,
                    h.quarantine_recoveries,
                )?;
            }
            for w in &self.pool_workers {
                writeln!(
                    f,
                    "  worker {}: {} tasks={} respawns={}",
                    w.worker,
                    if w.alive { "alive" } else { "dead" },
                    w.tasks_completed,
                    w.respawns,
                )?;
            }
        }
        match (self.p50, self.p99, self.p999) {
            (Some(p50), Some(p99), Some(p999)) => {
                write!(f, "p50={p50} p99={p99} p999={p999}")
            }
            _ => write!(f, "no latencies recorded"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_microseconds() {
        assert_eq!(bucket_of(Duration::from_micros(0)), 0);
        assert_eq!(bucket_of(Duration::from_micros(1)), 0);
        assert_eq!(bucket_of(Duration::from_micros(2)), 1);
        assert_eq!(bucket_of(Duration::from_micros(3)), 1);
        assert_eq!(bucket_of(Duration::from_micros(1024)), 10);
        assert_eq!(bucket_of(Duration::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_recorded_latencies() {
        let s = ServeStats::default();
        assert_eq!(s.latency_quantile(0.5), None);
        for _ in 0..99 {
            s.record_latency(Duration::from_micros(100)); // bucket 6
        }
        s.record_latency(Duration::from_millis(10)); // bucket 13
        let p50 = s.latency_quantile(0.5).unwrap();
        let p99 = s.latency_quantile(0.99).unwrap();
        let p999 = s.latency_quantile(0.999).unwrap();
        assert_eq!(p50, Duration::from_micros(128), "upper edge of bucket 6");
        assert_eq!(p99, Duration::from_micros(128));
        assert_eq!(p999, Duration::from_micros(16_384), "upper edge of bucket 13");
    }

    #[test]
    fn interpolated_quantiles_land_within_their_bucket() {
        let s = ServeStats::default();
        assert_eq!(s.latency_quantile_estimate(0.5), None);
        // 100 samples, all in bucket 6 ([64, 128) µs). Rank of p50 is 50,
        // so the interpolated estimate is halfway through the bucket.
        for _ in 0..100 {
            s.record_latency(Duration::from_micros(100));
        }
        let p50 = s.latency_quantile_estimate(0.5).unwrap();
        assert!(!p50.is_lower_bound);
        assert_eq!(p50.value, Duration::from_micros(96), "64 + 0.5 * (128 - 64)");
        // p100 reaches the bucket's upper edge, never beyond it.
        let p100 = s.latency_quantile_estimate(1.0).unwrap();
        assert_eq!(p100.value, Duration::from_micros(128));
        // Quantiles are monotone in q and stay inside [64, 128] µs.
        let mut prev = Duration::ZERO;
        for q in [0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let est = s.latency_quantile_estimate(q).unwrap();
            assert!(est.value >= prev, "quantiles must be monotone in q");
            assert!(est.value >= Duration::from_micros(64));
            assert!(est.value <= Duration::from_micros(128));
            prev = est.value;
        }
    }

    #[test]
    fn top_bucket_quantile_is_an_explicit_lower_bound() {
        let s = ServeStats::default();
        for _ in 0..9 {
            s.record_latency(Duration::from_micros(10));
        }
        s.record_latency(Duration::MAX); // lands in the open-ended bucket
        let p50 = s.latency_quantile_estimate(0.5).unwrap();
        assert!(!p50.is_lower_bound);
        let p999 = s.latency_quantile_estimate(0.999).unwrap();
        assert!(p999.is_lower_bound, "top-bucket rank must be flagged");
        assert_eq!(p999.value, Duration::from_micros(1 << 43), "top bucket lower edge");
        assert!(p999.to_string().starts_with('≥'));
        // The legacy upper-edge extractor silently reported a finite
        // "edge" for the same rank — the exact trap the flag closes.
        assert!(s.latency_quantile(0.999).is_some());
    }

    #[test]
    fn quantile_from_counts_skips_empty_buckets() {
        // Mass only in buckets 2 and 40 of a 44-bucket histogram.
        let mut counts = vec![0u64; BUCKETS];
        counts[2] = 1;
        counts[40] = 1;
        let p25 = quantile_from_counts(&counts, 0.25).unwrap();
        assert!(p25.value >= Duration::from_micros(4));
        assert!(p25.value <= Duration::from_micros(8));
        let p99 = quantile_from_counts(&counts, 0.99).unwrap();
        assert!(!p99.is_lower_bound, "bucket 40 is not the open-ended bucket");
        assert!(p99.value >= Duration::from_micros(1 << 40));
        assert!(p99.value <= Duration::from_micros(1 << 41));
        assert_eq!(quantile_from_counts(&[0; BUCKETS], 0.5), None);
    }

    #[test]
    fn shed_rate_is_total_rejections_over_submitted() {
        let h = HealthSnapshot {
            submitted: 100,
            completed: 70,
            degraded_ok: 10,
            shed_overload: 12,
            shed_deadline: 5,
            failed: 3,
            panicked: 0,
            retries: 4,
            cpu_fallbacks: 6,
            fallback_candidates: 120,
            fallback_modeled_ns: 9_000,
            shards: 2,
            shard_docs_scored: vec![60, 60],
            shard_partials: 2,
            shard_rescues: 1,
            sched_inline: 30,
            sched_fanout: 50,
            shard_health: vec![iiu_core::ShardHealthReport {
                shard: 0,
                health: iiu_core::ShardHealth::Ok,
                consecutive_failures: 0,
                failures: 3,
                panics: 2,
                timeouts: 1,
                quarantine_trips: 1,
                quarantine_recoveries: 1,
            }],
            pool_workers: vec![iiu_core::PoolWorkerReport {
                worker: 0,
                alive: true,
                tasks_completed: 42,
                respawns: 1,
            }],
            breaker: BreakerState::Closed,
            breaker_trips: 1,
            breaker_recoveries: 1,
            p50: None,
            p99: None,
            p999: None,
            queue_depth: 0,
        };
        assert!((h.shed_rate() - 0.20).abs() < 1e-12);
        assert!(h.to_string().contains("breaker=closed"));
        assert!(h.to_string().contains("fallback_candidates=120"));
        assert!(h.to_string().contains("shards=2"));
        assert!(h.to_string().contains("partial_answers=2"));
        assert!(h.to_string().contains("rescues=1"));
        assert!(h.to_string().contains("sched(inline=30 fanout=50)"));
        assert!(h.to_string().contains("shard 0: ok"));
        assert!(h.to_string().contains("worker 0: alive tasks=42 respawns=1"));
    }
}
