//! Lock-free serving statistics: outcome counters and a log₂ latency
//! histogram, snapshotted into a [`HealthSnapshot`] for operators.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::breaker::BreakerState;

/// Number of log₂ latency buckets. Bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` microseconds; the last bucket is open-ended, covering
/// everything from 2⁴³ µs (≈101 days) up.
const BUCKETS: usize = 44;

/// Shared, lock-free counters updated by admission and workers.
#[derive(Debug)]
pub struct ServeStats {
    /// Queries offered to the service (accepted or not).
    pub submitted: AtomicU64,
    /// Queries answered with hits from the device path, no degradation.
    pub completed: AtomicU64,
    /// Queries answered with hits but carrying a degradation record
    /// (CPU fallback, retries, pruned unknown terms).
    pub degraded_ok: AtomicU64,
    /// Queries shed at admission because the queue was full.
    pub shed_overload: AtomicU64,
    /// Queries rejected because their deadline expired (at admission, in
    /// queue, or mid-pipeline).
    pub shed_deadline: AtomicU64,
    /// Queries that failed permanently with a typed error.
    pub failed: AtomicU64,
    /// Queries that panicked under `catch_unwind` on either path — a
    /// device attempt (the query then fell back) or the CPU fallback
    /// (the query became `Rejected::Panicked`). The worker survived
    /// either way.
    pub panicked: AtomicU64,
    /// Device attempts beyond the first, summed over all queries.
    pub retries: AtomicU64,
    /// Queries answered by the CPU baseline instead of the device.
    pub cpu_fallbacks: AtomicU64,
    /// Candidate documents scanned by CPU-fallback answers. The fallback
    /// path keeps (not drops) the baseline's work accounting, so operators
    /// can see how much index work the CPU absorbed while the device was
    /// unhealthy.
    pub fallback_candidates: AtomicU64,
    /// Modeled nanoseconds of CPU work spent by fallback answers.
    pub fallback_modeled_ns: AtomicU64,
    /// Answers served with partial shard coverage (the response carried
    /// [`iiu_core::Degradation::ShardsUnavailable`]).
    pub shard_partials: AtomicU64,
    /// Queries rescued by the unsharded CPU engine after the shard
    /// fan-out errored outright (total shard outage, or fail-closed
    /// partial coverage).
    pub shard_rescues: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            degraded_ok: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            cpu_fallbacks: AtomicU64::new(0),
            fallback_candidates: AtomicU64::new(0),
            fallback_modeled_ns: AtomicU64::new(0),
            shard_partials: AtomicU64::new(0),
            shard_rescues: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn bucket_of(latency: Duration) -> usize {
    let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
    if us == 0 {
        return 0;
    }
    (63 - us.leading_zeros() as usize).min(BUCKETS - 1)
}

impl ServeStats {
    /// Records the end-to-end latency of one answered query.
    pub fn record_latency(&self, latency: Duration) {
        self.buckets[bucket_of(latency)].fetch_add(1, Ordering::Relaxed);
    }

    /// Latency quantile `q` in `0.0..=1.0`, as the upper edge of the
    /// bucket containing it (log₂-µs resolution). For the open-ended top
    /// bucket the reported 2⁴⁴ µs "edge" is a lower bound, not an upper
    /// one. `None` until at least one latency is recorded.
    pub fn latency_quantile(&self, q: f64) -> Option<Duration> {
        let counts: Vec<u64> =
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Duration::from_micros(2u64.saturating_pow(i as u32 + 1)));
            }
        }
        Some(Duration::from_micros(u64::MAX))
    }

    /// Queries that were answered with hits (clean or degraded).
    pub fn answered(&self) -> u64 {
        self.completed.load(Ordering::Relaxed) + self.degraded_ok.load(Ordering::Relaxed)
    }

    /// Queries resolved as a typed rejection rather than hits.
    pub fn rejected(&self) -> u64 {
        self.shed_overload.load(Ordering::Relaxed)
            + self.shed_deadline.load(Ordering::Relaxed)
            + self.failed.load(Ordering::Relaxed)
    }
}

/// Point-in-time operator view of the service.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// Queries offered so far.
    pub submitted: u64,
    /// Clean device-path answers.
    pub completed: u64,
    /// Degraded answers (fallback / retried / pruned terms).
    pub degraded_ok: u64,
    /// Shed at admission (queue full).
    pub shed_overload: u64,
    /// Rejected on deadline.
    pub shed_deadline: u64,
    /// Permanent typed failures.
    pub failed: u64,
    /// Isolated query panics (device attempt or CPU fallback).
    pub panicked: u64,
    /// Extra device attempts.
    pub retries: u64,
    /// CPU-baseline answers.
    pub cpu_fallbacks: u64,
    /// Candidate documents scanned by CPU-fallback answers.
    pub fallback_candidates: u64,
    /// Modeled nanoseconds of CPU work spent by fallback answers.
    pub fallback_modeled_ns: u64,
    /// Document shards the CPU fallback fans out across (1 = unsharded).
    pub shards: usize,
    /// Cumulative documents scored per shard (empty when unsharded) — the
    /// operator's load-balance view.
    pub shard_docs_scored: Vec<u64>,
    /// Answers served with partial shard coverage (truthfully labeled via
    /// `Degradation::ShardsUnavailable`).
    pub shard_partials: u64,
    /// Queries rescued by the unsharded CPU engine after the shard
    /// fan-out errored outright.
    pub shard_rescues: u64,
    /// Per-shard supervision state and counters (failures, quarantine
    /// trips, respawns); empty when unsharded.
    pub shard_health: Vec<iiu_core::ShardHealthReport>,
    /// Breaker state at snapshot time.
    pub breaker: BreakerState,
    /// Breaker trips so far.
    pub breaker_trips: u64,
    /// Breaker recoveries so far.
    pub breaker_recoveries: u64,
    /// Median answer latency, if any were recorded.
    pub p50: Option<Duration>,
    /// 99th-percentile answer latency, if any were recorded.
    pub p99: Option<Duration>,
    /// Current depth of the admission queue.
    pub queue_depth: usize,
}

impl HealthSnapshot {
    /// Queries answered with hits (clean or degraded).
    pub fn answered(&self) -> u64 {
        self.completed + self.degraded_ok
    }

    /// Queries resolved as a typed rejection rather than hits.
    pub fn rejected_total(&self) -> u64 {
        self.shed_overload + self.shed_deadline + self.failed
    }

    /// Fraction of submitted queries shed or rejected, in `0.0..=1.0`.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        (self.shed_overload + self.shed_deadline + self.failed) as f64 / self.submitted as f64
    }
}

impl std::fmt::Display for HealthSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "submitted={} completed={} degraded={} shed(overload={} deadline={}) \
             failed={} panicked={}",
            self.submitted,
            self.completed,
            self.degraded_ok,
            self.shed_overload,
            self.shed_deadline,
            self.failed,
            self.panicked,
        )?;
        writeln!(
            f,
            "retries={} cpu_fallbacks={} fallback_candidates={} breaker={} trips={} \
             recoveries={} queue_depth={}",
            self.retries,
            self.cpu_fallbacks,
            self.fallback_candidates,
            self.breaker,
            self.breaker_trips,
            self.breaker_recoveries,
            self.queue_depth,
        )?;
        if self.shards > 1 {
            writeln!(
                f,
                "shards={} partial_answers={} rescues={} docs_scored_per_shard={:?}",
                self.shards, self.shard_partials, self.shard_rescues, self.shard_docs_scored
            )?;
            for h in &self.shard_health {
                writeln!(
                    f,
                    "  shard {}: {} failures={} (panics={} timeouts={}) \
                     quarantine(trips={} recoveries={}) respawns={}",
                    h.shard,
                    h.health,
                    h.failures,
                    h.panics,
                    h.timeouts,
                    h.quarantine_trips,
                    h.quarantine_recoveries,
                    h.respawns,
                )?;
            }
        }
        match (self.p50, self.p99) {
            (Some(p50), Some(p99)) => write!(f, "p50≤{p50:?} p99≤{p99:?}"),
            _ => write!(f, "no latencies recorded"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_microseconds() {
        assert_eq!(bucket_of(Duration::from_micros(0)), 0);
        assert_eq!(bucket_of(Duration::from_micros(1)), 0);
        assert_eq!(bucket_of(Duration::from_micros(2)), 1);
        assert_eq!(bucket_of(Duration::from_micros(3)), 1);
        assert_eq!(bucket_of(Duration::from_micros(1024)), 10);
        assert_eq!(bucket_of(Duration::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_recorded_latencies() {
        let s = ServeStats::default();
        assert_eq!(s.latency_quantile(0.5), None);
        for _ in 0..99 {
            s.record_latency(Duration::from_micros(100)); // bucket 6
        }
        s.record_latency(Duration::from_millis(10)); // bucket 13
        let p50 = s.latency_quantile(0.5).unwrap();
        let p99 = s.latency_quantile(0.99).unwrap();
        let p999 = s.latency_quantile(0.999).unwrap();
        assert_eq!(p50, Duration::from_micros(128), "upper edge of bucket 6");
        assert_eq!(p99, Duration::from_micros(128));
        assert_eq!(p999, Duration::from_micros(16_384), "upper edge of bucket 13");
    }

    #[test]
    fn shed_rate_is_total_rejections_over_submitted() {
        let h = HealthSnapshot {
            submitted: 100,
            completed: 70,
            degraded_ok: 10,
            shed_overload: 12,
            shed_deadline: 5,
            failed: 3,
            panicked: 0,
            retries: 4,
            cpu_fallbacks: 6,
            fallback_candidates: 120,
            fallback_modeled_ns: 9_000,
            shards: 2,
            shard_docs_scored: vec![60, 60],
            shard_partials: 2,
            shard_rescues: 1,
            shard_health: vec![iiu_core::ShardHealthReport {
                shard: 0,
                health: iiu_core::ShardHealth::Ok,
                consecutive_failures: 0,
                failures: 3,
                panics: 2,
                timeouts: 1,
                quarantine_trips: 1,
                quarantine_recoveries: 1,
                respawns: 0,
            }],
            breaker: BreakerState::Closed,
            breaker_trips: 1,
            breaker_recoveries: 1,
            p50: None,
            p99: None,
            queue_depth: 0,
        };
        assert!((h.shed_rate() - 0.20).abs() < 1e-12);
        assert!(h.to_string().contains("breaker=closed"));
        assert!(h.to_string().contains("fallback_candidates=120"));
        assert!(h.to_string().contains("shards=2"));
        assert!(h.to_string().contains("partial_answers=2"));
        assert!(h.to_string().contains("rescues=1"));
        assert!(h.to_string().contains("shard 0: ok"));
        assert!(h.to_string().contains("respawns=0"));
    }
}
