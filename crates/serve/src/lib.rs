//! Resilient query-serving layer over the IIU reproduction.
//!
//! The paper (Heo et al., ASPLOS 2020) evaluates the accelerator under an
//! offered query stream; this crate adds the host-side machinery a real
//! deployment would wrap around it, built on one invariant the paper's
//! design gives us for free: the CPU baseline and the IIU device produce
//! **bit-identical hits**, so falling back never changes answers — only
//! latency.
//!
//! A [`QueryService`] owns a worker pool sharing one `Arc<InvertedIndex>`
//! and resolves every submitted query to exactly one of:
//!
//! * clean hits from the device path,
//! * degraded hits (tagged [`iiu_core::Degradation`] — CPU fallback,
//!   retries, pruned unknown terms), or
//! * a typed [`Rejected`] (shed on overload, deadline exceeded, permanent
//!   failure, isolated panic).
//!
//! Resilience mechanisms, each configured via [`ServeConfig`]:
//!
//! * **Deadlines** — enforced at admission, after dequeue, and between
//!   device attempts.
//! * **Load shedding** — a bounded admission queue; overflow is rejected
//!   immediately with [`Rejected::Overloaded`] instead of growing tail
//!   latency unboundedly.
//! * **Retry with jittered exponential backoff** — transient device
//!   failures ([`iiu_sim::SimError::Stalled`]) are retried on a fresh
//!   simulator; backoff never sleeps past the query's deadline.
//! * **Panic isolation** — every engine run is wrapped in
//!   `catch_unwind`; a poisoned query cannot take down a worker.
//! * **Circuit breaker** — consecutive device failures trip the service
//!   onto the CPU baseline; half-open probes restore the device path once
//!   it heals ([`CircuitBreaker`]).
//!
//! Deterministic fault injection ([`FaultPlan`]) sabotages chosen device
//! attempts with a 1-cycle budget so soak tests and `iiu serve-bench` can
//! exercise every one of these paths reproducibly.
//!
//! A service can also be started over a crash-safe **incremental** index
//! ([`service::QueryService::start_live`]): queries answer from sealed
//! segments unioned with the in-memory write buffer while
//! [`service::QueryService::ingest`] accepts new documents concurrently,
//! each batch WAL-durable (fsynced) before it is acknowledged.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod breaker;
pub mod config;
pub mod scheduler;
pub mod service;
pub mod stats;

pub use breaker::{BreakerState, CircuitBreaker, Route};
pub use config::{BreakerConfig, FaultPlan, RetryPolicy, SchedulerConfig, ServeConfig};
pub use iiu_core::{
    IncrementalOptions, IngestDoc, LiveIndex, PoolWorkerReport, ShardChaosPlan, ShardHealth,
    ShardHealthReport, ShardPoolConfig,
};
pub use scheduler::{ParallelismMode, RouteDecision};
pub use service::{PendingQuery, QueryService, Rejected};
pub use stats::{quantile_from_counts, HealthSnapshot, Quantile, ServeStats};
