//! Circuit breaker guarding the device (IIU) path.
//!
//! The paper's architecture splits every query between a host CPU and the
//! IIU device (§4); the two paths return bit-identical hits. That makes
//! the CPU baseline a semantically lossless fallback, and this breaker
//! decides when to take it:
//!
//! ```text
//!            failures < threshold
//!          ┌──────────────────────┐
//!          ▼                      │
//!      ┌────────┐  N consecutive  │
//!      │ Closed │─────────────────┴──▶ ┌──────┐
//!      └────────┘     failures         │ Open │◀─────────────┐
//!          ▲                           └──┬───┘              │
//!          │                              │ cooldown elapsed │
//!          │ M consecutive                ▼                  │ probe
//!          │ probe successes         ┌──────────┐            │ fails
//!          └─────────────────────────│ HalfOpen │────────────┘
//!                                    └──────────┘
//! ```
//!
//! While `Open`, every query routes to the CPU. While `HalfOpen`, one
//! probe query at a time is allowed onto the device; the rest keep
//! falling back until enough probes succeed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use crate::config::BreakerConfig;

/// The breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Device path healthy; all queries use it.
    Closed,
    /// Device path failing; all queries fall back to the CPU.
    Open,
    /// Cooling down: single probes test the device while other queries
    /// still fall back.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// Where the breaker routes one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Run on the device. When `probe` is true this query is a half-open
    /// probe and its outcome MUST be reported via [`CircuitBreaker::on_success`]
    /// / [`CircuitBreaker::on_failure`] with `probe = true`.
    Device {
        /// This query is the single in-flight half-open probe.
        probe: bool,
    },
    /// Bypass the device; serve from the CPU baseline.
    Fallback,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
    probe_successes: u32,
}

/// Thread-safe breaker shared by all workers.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
    trips: AtomicU64,
    recoveries: AtomicU64,
}

/// Locks a mutex, recovering from poisoning: the breaker's invariants
/// hold at every await-free write, so a panicking peer cannot leave it
/// half-updated.
fn lock(m: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probe_in_flight: false,
                probe_successes: 0,
            }),
            trips: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
        }
    }

    /// Routes one query. Calls that return `Device { probe: true }`
    /// acquire the single probe slot and must report an outcome.
    pub fn route(&self) -> Route {
        let mut g = lock(&self.inner);
        match g.state {
            BreakerState::Closed => Route::Device { probe: false },
            BreakerState::Open => {
                let cooled = g.opened_at.is_some_and(|t| t.elapsed() >= self.cfg.cooldown);
                if cooled {
                    g.state = BreakerState::HalfOpen;
                    g.probe_successes = 0;
                    g.probe_in_flight = true;
                    Route::Device { probe: true }
                } else {
                    Route::Fallback
                }
            }
            BreakerState::HalfOpen => {
                if g.probe_in_flight {
                    Route::Fallback
                } else {
                    g.probe_in_flight = true;
                    Route::Device { probe: true }
                }
            }
        }
    }

    /// Reports a successful device query.
    pub fn on_success(&self, probe: bool) {
        let mut g = lock(&self.inner);
        match g.state {
            BreakerState::Closed => g.consecutive_failures = 0,
            BreakerState::HalfOpen if probe => {
                g.probe_in_flight = false;
                g.probe_successes += 1;
                if g.probe_successes >= self.cfg.probe_successes {
                    g.state = BreakerState::Closed;
                    g.consecutive_failures = 0;
                    g.opened_at = None;
                    self.recoveries.fetch_add(1, Ordering::Relaxed);
                }
            }
            _ => {}
        }
    }

    /// Reports that a device-routed query was abandoned before the device
    /// produced a verdict (e.g. its deadline expired between attempts or
    /// during backoff). Releases the probe slot without counting success
    /// or failure — a caller-side deadline says nothing about device
    /// health — so the next half-open query can probe instead of the
    /// breaker sticking in `HalfOpen` forever.
    pub fn on_abandoned(&self, probe: bool) {
        if !probe {
            return;
        }
        let mut g = lock(&self.inner);
        if g.state == BreakerState::HalfOpen {
            g.probe_in_flight = false;
        }
    }

    /// Reports a failed device query (retries already exhausted).
    pub fn on_failure(&self, probe: bool) {
        let mut g = lock(&self.inner);
        match g.state {
            BreakerState::Closed => {
                g.consecutive_failures += 1;
                if g.consecutive_failures >= self.cfg.failure_threshold {
                    g.state = BreakerState::Open;
                    g.opened_at = Some(Instant::now());
                    self.trips.fetch_add(1, Ordering::Relaxed);
                }
            }
            BreakerState::HalfOpen if probe => {
                // A failed probe re-opens and restarts the cooldown.
                g.probe_in_flight = false;
                g.probe_successes = 0;
                g.state = BreakerState::Open;
                g.opened_at = Some(Instant::now());
                self.trips.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        lock(&self.inner).state
    }

    /// Closed → Open transitions so far (including failed-probe re-opens).
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// HalfOpen → Closed recoveries so far.
    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn cfg(threshold: u32, cooldown_ms: u64, probes: u32) -> BreakerConfig {
        BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::from_millis(cooldown_ms),
            probe_successes: probes,
        }
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let b = CircuitBreaker::new(cfg(3, 1000, 1));
        b.on_failure(false);
        b.on_failure(false);
        b.on_success(false); // resets the streak
        b.on_failure(false);
        b.on_failure(false);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(matches!(b.route(), Route::Fallback));
    }

    #[test]
    fn half_open_probe_cycle_recovers() {
        let b = CircuitBreaker::new(cfg(1, 0, 2));
        b.on_failure(false);
        assert_eq!(b.state(), BreakerState::Open);
        // Zero cooldown: next route is a probe.
        assert!(matches!(b.route(), Route::Device { probe: true }));
        // While the probe is in flight, everyone else falls back.
        assert!(matches!(b.route(), Route::Fallback));
        b.on_success(true);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(matches!(b.route(), Route::Device { probe: true }));
        b.on_success(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.recoveries(), 1);
        assert!(matches!(b.route(), Route::Device { probe: false }));
    }

    #[test]
    fn failed_probe_reopens() {
        let b = CircuitBreaker::new(cfg(1, 0, 1));
        b.on_failure(false);
        assert!(matches!(b.route(), Route::Device { probe: true }));
        b.on_failure(true);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn abandoned_probe_releases_the_slot() {
        let b = CircuitBreaker::new(cfg(1, 0, 1));
        b.on_failure(false);
        assert!(matches!(b.route(), Route::Device { probe: true }));
        assert!(matches!(b.route(), Route::Fallback), "probe slot is held");
        // The probe's deadline expired before the device answered; the
        // slot must free up without counting as success or failure.
        b.on_abandoned(true);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(matches!(b.route(), Route::Device { probe: true }));
        b.on_success(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.recoveries(), 1);
    }

    #[test]
    fn abandoned_non_probe_is_a_no_op() {
        let b = CircuitBreaker::new(cfg(3, 1000, 1));
        b.on_failure(false);
        b.on_abandoned(false);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure(false);
        b.on_failure(false);
        assert_eq!(b.state(), BreakerState::Open, "failure streak untouched");
    }

    #[test]
    fn open_respects_cooldown() {
        let b = CircuitBreaker::new(cfg(1, 10_000, 1));
        b.on_failure(false);
        assert!(matches!(b.route(), Route::Fallback), "cooldown has not elapsed");
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn late_non_probe_outcomes_are_ignored_while_open() {
        let b = CircuitBreaker::new(cfg(1, 10_000, 1));
        b.on_failure(false);
        // Stragglers from queries routed before the trip must not corrupt
        // the open state.
        b.on_success(false);
        b.on_failure(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }
}
