//! Serving-layer configuration: pool sizing, admission, deadlines, retry,
//! breaker thresholds, and deterministic fault injection for tests.

use std::time::Duration;

use iiu_index::faultinject::SplitMix64;
use iiu_sim::SimConfig;

/// Retry policy for transient device-path failures
/// ([`iiu_sim::SimError::Stalled`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts on the device path, including the first
    /// (`1` disables retries).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per further attempt.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Fraction of the backoff randomized away, in `0.0..=1.0`. With
    /// jitter `j`, the actual sleep is uniform in
    /// `[backoff × (1 − j), backoff]`, decorrelating retry storms.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before attempt `attempt` (1-based count of
    /// *completed* attempts), using `rng` for the jitter draw.
    pub(crate) fn backoff(&self, attempt: u32, rng: &mut SplitMix64) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let full = self.base_backoff.saturating_mul(1u32 << exp).min(self.max_backoff);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter <= f64::EPSILON {
            return full;
        }
        // Uniform in [1 - jitter, 1] of the full backoff.
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        full.mul_f64(1.0 - jitter * unit)
    }
}

/// Circuit-breaker thresholds for the device (IIU) path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive device-path query failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before allowing half-open probes.
    pub cooldown: Duration,
    /// Consecutive successful probes required to close again.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(100),
            probe_successes: 2,
        }
    }
}

/// Deterministic fault injection, used by the soak test and `serve-bench`
/// to exercise the recovery paths. Faults sabotage a device attempt by
/// running it with a 1-cycle budget, which the simulator reports as
/// [`iiu_sim::SimError::Stalled`] — exactly the failure the retry and
/// breaker logic exist for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability that a query's *first* device attempt is sabotaged
    /// (retries run clean, so this exercises the retry path).
    pub stall_rate: f64,
    /// Query sequence range `[start, end)` in which *every* device
    /// attempt is sabotaged: retries exhaust, queries fall back to the
    /// CPU, and the breaker trips. Used to make breaker trip/recovery
    /// deterministic in tests.
    pub burst: Option<(u64, u64)>,
    /// Query sequence range `[start, end)` in which the first device
    /// attempt *panics* instead of stalling, exercising the per-query
    /// `catch_unwind` isolation.
    pub panic_burst: Option<(u64, u64)>,
    /// Seed for the per-query sabotage draw.
    pub seed: u64,
}

impl FaultPlan {
    /// No injected faults.
    pub const NONE: FaultPlan =
        FaultPlan { stall_rate: 0.0, burst: None, panic_burst: None, seed: 0 };

    /// Whether device attempt number `attempt` (0-based) of query number
    /// `seq` should be sabotaged. Pure function of the plan, so every
    /// worker agrees and runs reproduce.
    pub fn sabotage(&self, seq: u64, attempt: u32) -> bool {
        if let Some((start, end)) = self.burst {
            if (start..end).contains(&seq) {
                return true;
            }
        }
        if attempt == 0 && self.stall_rate > 0.0 {
            let draw = SplitMix64::new(self.seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .next_u64();
            let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
            return unit < self.stall_rate;
        }
        false
    }

    /// Whether device attempt number `attempt` of query `seq` should
    /// panic (first attempt only; retries after an isolated panic never
    /// fire because a panic immediately falls back).
    pub fn sabotage_panic(&self, seq: u64, attempt: u32) -> bool {
        attempt == 0
            && self.panic_burst.is_some_and(|(start, end)| (start..end).contains(&seq))
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

/// Per-query parallelism policy for the sharded CPU path (the paper's
/// §4.4 hybrid inter/intra-query scheduling) plus admission batching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// When `true`, each query is routed by estimated cost: cheap queries
    /// run single-shard inter-query style (on the serve worker, no
    /// fan-out tax) and heavy queries fan out across every shard
    /// (intra-query). When `false` (the default), every sharded query
    /// fans out — the fixed topology prior deployments ran.
    pub hybrid: bool,
    /// Document-frequency floor above which a query counts as heavy
    /// (its longest postings list reaches this many documents). Defaults
    /// to [`iiu_core::HEAVY_DF_THRESHOLD`], the `shard_bench` calibration
    /// point where intra-query fan-out pays for itself.
    pub heavy_df_threshold: u64,
    /// Upper bound on jobs a worker drains from the admission queue in
    /// one lock acquisition. Batching only engages when the backlog is
    /// deep enough to feed every worker (a worker never grabs more than
    /// its fair share of the queue), so light load keeps per-job
    /// latency. Clamped to at least 1 at service start.
    pub admission_batch: usize,
    /// Minimum deadline slack a dequeued job must have left to be worth
    /// starting; jobs below it are shed immediately with
    /// `DeadlineExceeded` instead of burning pool time on an answer
    /// that will miss its deadline anyway. `Duration::ZERO` (the
    /// default) sheds only jobs already past their deadline.
    pub min_slack: Duration,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            hybrid: false,
            heavy_df_threshold: iiu_core::HEAVY_DF_THRESHOLD,
            admission_batch: 8,
            min_slack: Duration::ZERO,
        }
    }
}

/// Full serving-layer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Bounded admission-queue capacity; submissions beyond it are shed
    /// with [`crate::Rejected::Overloaded`].
    pub queue_capacity: usize,
    /// Deadline applied to every query from the moment of admission.
    pub default_deadline: Duration,
    /// Retry policy for transient device failures.
    pub retry: RetryPolicy,
    /// Device-path circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Accelerator configuration used by the device path.
    pub sim: SimConfig,
    /// Cores allocated per query (the paper's `numCores`); clamped to
    /// `sim.n_cores` at service start.
    pub cores_per_query: usize,
    /// Injected faults (tests and `serve-bench`; [`FaultPlan::NONE`] in
    /// normal operation).
    pub fault: FaultPlan,
    /// Run the CPU-fallback path with block-max pruned top-k (results are
    /// bit-identical to exhaustive; only the work done changes). Off by
    /// default to keep fallback behavior byte-compatible with prior
    /// deployments.
    pub pruned_cpu_fallback: bool,
    /// Document shards the CPU-fallback path fans each query across
    /// (intra-query parallelism). `1` (the default, and the floor the
    /// service clamps to) keeps the unsharded fallback; `N > 1` splits the
    /// index round-robin at service start and answers every fallback query
    /// on an N-worker shard pool with bit-identical results.
    pub shards: usize,
    /// Supervision policy for the shard pool (fan-out deadline,
    /// quarantine, respawn backoff). A `None` deadline here is replaced
    /// with [`Self::default_deadline`] at service start so a wedged shard
    /// can never hang the coordinator.
    pub shard_pool: iiu_core::ShardPoolConfig,
    /// Shard-level fault injection (chaos campaigns and `serve-bench`;
    /// quiet in normal operation).
    pub shard_chaos: iiu_core::ShardChaosPlan,
    /// When `true`, a sharded query that cannot cover every shard fails
    /// (and falls into the error path) instead of answering partially
    /// with [`iiu_core::Degradation::ShardsUnavailable`].
    pub fail_closed_shards: bool,
    /// Per-query parallelism policy and admission batching.
    pub scheduler: SchedulerConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let sim = SimConfig::default();
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            default_deadline: Duration::from_millis(250),
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            cores_per_query: sim.n_cores,
            sim,
            fault: FaultPlan::NONE,
            pruned_cpu_fallback: false,
            shards: 1,
            shard_pool: iiu_core::ShardPoolConfig::default(),
            shard_chaos: iiu_core::ShardChaosPlan::NONE,
            fail_closed_shards: false,
            scheduler: SchedulerConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_micros(350),
            jitter: 0.0,
        };
        let mut rng = SplitMix64::new(1);
        assert_eq!(p.backoff(1, &mut rng), Duration::from_micros(100));
        assert_eq!(p.backoff(2, &mut rng), Duration::from_micros(200));
        assert_eq!(p.backoff(3, &mut rng), Duration::from_micros(350));
        assert_eq!(p.backoff(9, &mut rng), Duration::from_micros(350));
    }

    #[test]
    fn jitter_stays_in_band() {
        let p = RetryPolicy { jitter: 0.5, ..RetryPolicy::default() };
        let unjittered = RetryPolicy { jitter: 0.0, ..p };
        let mut rng = SplitMix64::new(7);
        for attempt in 1..6 {
            let full = unjittered.backoff(attempt, &mut SplitMix64::new(0));
            let full = full.max(p.base_backoff); // non-degenerate
            for _ in 0..100 {
                let d = p.backoff(attempt, &mut rng);
                assert!(d <= full, "{d:?} > {full:?}");
                assert!(d >= full.mul_f64(0.5 - 1e-9), "{d:?} below band for {full:?}");
            }
        }
    }

    #[test]
    fn fault_plan_burst_and_rate() {
        let plan = FaultPlan { burst: Some((10, 20)), seed: 3, ..FaultPlan::NONE };
        assert!(plan.sabotage(10, 0) && plan.sabotage(19, 3));
        assert!(!plan.sabotage(9, 0) && !plan.sabotage(20, 0));

        let plan = FaultPlan { stall_rate: 0.25, seed: 3, ..FaultPlan::NONE };
        let hits = (0..4000).filter(|&s| plan.sabotage(s, 0)).count();
        assert!((800..1200).contains(&hits), "rate off: {hits}/4000");
        // Retries (attempt > 0) are never sabotaged outside a burst.
        assert!((0..4000).all(|s| !plan.sabotage(s, 1)));
        // Deterministic.
        assert_eq!(plan.sabotage(123, 0), plan.sabotage(123, 0));
    }

    #[test]
    fn fault_plan_none_is_quiet() {
        assert!((0..100).all(|s| !FaultPlan::NONE.sabotage(s, 0)));
        assert!((0..100).all(|s| !FaultPlan::NONE.sabotage_panic(s, 0)));
    }

    #[test]
    fn panic_burst_hits_first_attempt_only() {
        let plan = FaultPlan { panic_burst: Some((5, 7)), ..FaultPlan::NONE };
        assert!(plan.sabotage_panic(5, 0) && plan.sabotage_panic(6, 0));
        assert!(!plan.sabotage_panic(4, 0) && !plan.sabotage_panic(7, 0));
        assert!(!plan.sabotage_panic(5, 1));
        // Panic sabotage is independent of the stall machinery.
        assert!(!plan.sabotage(5, 0));
    }
}
