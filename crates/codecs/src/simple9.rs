//! Simple9 (Anh & Moffat 2005): packs as many small integers as possible
//! into each 32-bit word — a 4-bit selector chooses one of nine layouts
//! (28×1-bit … 1×28-bit). This is the selector-coded family the original
//! NewPForDelta compresses its exception arrays with (Simple16 in the
//! paper; Simple9 is its simpler homogeneous sibling).

use crate::{deltas, try_prefix_sums, Codec, CodecError};

const NAME: &str = "Simple9";

/// The nine layouts: (values per word, bits per value).
pub const MODES: [(u32, u32); 9] =
    [(28, 1), (14, 2), (9, 3), (7, 4), (5, 5), (4, 7), (3, 9), (2, 14), (1, 28)];

/// Largest encodable value (28 bits).
pub const MAX_VALUE: u32 = (1 << 28) - 1;

/// The Simple9 codec. Values must fit in 28 bits; [`Codec::encode_values`]
/// returns `None` otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Simple9;

impl Simple9 {
    /// Encodes a sequence of values, each `<= MAX_VALUE`, into 32-bit
    /// little-endian words.
    ///
    /// # Panics
    ///
    /// Panics if a value exceeds [`MAX_VALUE`].
    pub fn encode_words(values: &[u32]) -> Vec<u8> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < values.len() {
            // Greedy: densest mode whose bit budget fits the next run.
            let (selector, (count, bits)) = MODES
                .iter()
                .enumerate()
                .find(|&(_, &(count, bits))| {
                    values[pos..].iter().take(count as usize).all(|&v| v < (1u32 << bits))
                })
                .map(|(i, m)| (i as u32, *m))
                .unwrap_or_else(|| {
                    panic!("value {} exceeds 28 bits", values[pos]);
                });
            let take = (count as usize).min(values.len() - pos);
            let mut word: u32 = selector;
            for (i, &v) in values[pos..pos + take].iter().enumerate() {
                word |= v << (4 + i as u32 * bits);
            }
            out.extend_from_slice(&word.to_le_bytes());
            pos += take;
        }
        out
    }

    /// Decodes `n` values from words produced by [`Simple9::encode_words`].
    /// Truncated words and the seven unused selectors (9..=15) become
    /// errors, never panics.
    pub fn try_decode_words(bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        let mut pos = 0usize;
        Self::try_decode_words_at(bytes, &mut pos, n)
    }

    /// Variant of [`Simple9::try_decode_words`] starting at byte `*pos`
    /// and advancing it past the consumed words (for embedding Simple9
    /// runs inside other formats).
    pub fn try_decode_words_at(
        bytes: &[u8],
        pos: &mut usize,
        n: usize,
    ) -> Result<Vec<u32>, CodecError> {
        // Each 4-byte word yields at most 28 values, which bounds the
        // allocation even when `n` wildly exceeds the input.
        let mut out = Vec::with_capacity(n.min(bytes.len().saturating_mul(7)));
        while out.len() < n {
            let word = crate::take_u32(bytes, pos, NAME, "selector word")?;
            let &(count, bits) =
                MODES.get((word & 0xf) as usize).ok_or(CodecError::Malformed {
                    codec: NAME,
                    what: "invalid selector (only 0..=8 are defined)",
                })?;
            let mask = if bits == 28 { (1u32 << 28) - 1 } else { (1u32 << bits) - 1 };
            for i in 0..count {
                if out.len() == n {
                    break;
                }
                out.push((word >> (4 + i * bits)) & mask);
            }
        }
        Ok(out)
    }

    /// Whether every value is encodable.
    pub fn fits(values: &[u32]) -> bool {
        values.iter().all(|&v| v <= MAX_VALUE)
    }
}

impl Codec for Simple9 {
    fn name(&self) -> &'static str {
        "Simple9"
    }

    fn encode_sorted(&self, doc_ids: &[u32]) -> Vec<u8> {
        // d-gaps of a docID space < 2^28 always fit; larger gaps would
        // panic, so guard with a scaled fallback is unnecessary for the
        // corpora this crate targets (docIDs are < 2^31 and realistic
        // gaps far smaller). Encode the first element separately if huge.
        Self::encode_words(&deltas(doc_ids))
    }

    fn encode_values(&self, values: &[u32]) -> Option<Vec<u8>> {
        Self::fits(values).then(|| Self::encode_words(values))
    }

    fn try_decode_sorted(&self, bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        try_prefix_sums(&Self::try_decode_words(bytes, n)?, NAME)
    }

    fn try_decode_values(&self, bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        Self::try_decode_words(bytes, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ones_pack_28_per_word() {
        let values = vec![1u32; 56];
        let bytes = Simple9::encode_words(&values);
        assert_eq!(bytes.len(), 8); // two words
        assert_eq!(Simple9::try_decode_words(&bytes, 56).unwrap(), values);
    }

    #[test]
    fn mixed_magnitudes() {
        let values = vec![1, 3, 200, 5, 1, 1 << 27, 0, 0, 9];
        let bytes = Simple9::encode_words(&values);
        assert_eq!(Simple9::try_decode_words(&bytes, values.len()).unwrap(), values);
    }

    #[test]
    fn max_value_roundtrips() {
        let values = vec![MAX_VALUE, 0, MAX_VALUE];
        let bytes = Simple9::encode_words(&values);
        assert_eq!(Simple9::try_decode_words(&bytes, 3).unwrap(), values);
    }

    #[test]
    #[should_panic(expected = "exceeds 28 bits")]
    fn oversized_value_panics() {
        let _ = Simple9::encode_words(&[1 << 28]);
    }

    #[test]
    fn try_decode_rejects_bad_selector_and_truncation() {
        // Selector 0xf is one of the seven unused layouts.
        let word = 0x0000_000fu32.to_le_bytes();
        assert!(matches!(
            Simple9::try_decode_words(&word, 1),
            Err(CodecError::Malformed { .. })
        ));
        // Three bytes cannot hold a selector word.
        assert!(matches!(
            Simple9::try_decode_words(&[1, 2, 3], 1),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn encode_values_rejects_oversized() {
        assert!(Simple9.encode_values(&[u32::MAX]).is_none());
        assert!(Simple9.encode_values(&[MAX_VALUE]).is_some());
    }

    #[test]
    fn beats_vbyte_on_tiny_values() {
        use crate::vbyte::VByte;
        let values = vec![1u32; 1000];
        let s9 = Simple9.encode_values(&values).unwrap().len();
        let vb = VByte.encode_values(&values).unwrap().len();
        assert!(s9 * 5 < vb, "Simple9 ({s9}) should crush VByte ({vb}) on 1-bit data");
    }

    proptest! {
        #[test]
        fn prop_roundtrip(values in proptest::collection::vec(0u32..=MAX_VALUE, 0..500)) {
            let bytes = Simple9::encode_words(&values);
            prop_assert_eq!(Simple9::try_decode_words(&bytes, values.len()).unwrap(), values);
        }

        #[test]
        fn prop_sorted_roundtrip(ids in proptest::collection::btree_set(0u32..1 << 27, 1..400)) {
            let ids: Vec<u32> = ids.into_iter().collect();
            let bytes = Simple9.encode_sorted(&ids);
            prop_assert_eq!(Simple9.decode_sorted(&bytes, ids.len()), ids);
        }
    }
}
