//! SIMD-BP128-style bit-packing (Lemire & Boytsov 2015): 128-value blocks,
//! one byte of width metadata per block, no exceptions. This is the layout
//! family behind the paper's "SIMDPfor" column; the SIMD lane reordering of
//! the original changes decode speed, not size, so a scalar decoder is
//! faithful for compression-ratio purposes.

use iiu_index::bitpack::{bits_for, BitReader, BitWriter};

use crate::{deltas, prefix_sums, Codec};

/// Values per block.
pub const BP_BLOCK_LEN: usize = 128;

/// The SIMD-BP128-style codec.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimdBp128;

impl SimdBp128 {
    fn encode_seq(values: &[u32]) -> Vec<u8> {
        let mut out = Vec::new();
        for chunk in values.chunks(BP_BLOCK_LEN) {
            let width = chunk.iter().copied().map(bits_for).max().unwrap_or(0);
            out.push(width);
            let mut w = BitWriter::new();
            for &v in chunk {
                w.write(v, width);
            }
            out.extend_from_slice(&w.finish());
        }
        out
    }

    fn decode_seq(bytes: &[u8], n: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(n);
        let mut pos = 0usize;
        let mut left = n;
        while left > 0 {
            let take = left.min(BP_BLOCK_LEN);
            let width = bytes[pos];
            pos += 1;
            let block_bytes = (take * width as usize).div_ceil(8);
            let mut r = BitReader::new(&bytes[pos..pos + block_bytes]);
            out.extend((0..take).map(|_| r.read(width)));
            pos += block_bytes;
            left -= take;
        }
        out
    }
}

impl Codec for SimdBp128 {
    fn name(&self) -> &'static str {
        "SIMD-BP128"
    }

    fn encode_sorted(&self, doc_ids: &[u32]) -> Vec<u8> {
        Self::encode_seq(&deltas(doc_ids))
    }

    fn decode_sorted(&self, bytes: &[u8], n: usize) -> Vec<u32> {
        prefix_sums(&Self::decode_seq(bytes, n))
    }

    fn encode_values(&self, values: &[u32]) -> Option<Vec<u8>> {
        Some(Self::encode_seq(values))
    }

    fn decode_values(&self, bytes: &[u8], n: usize) -> Vec<u32> {
        Self::decode_seq(bytes, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_zero_block_takes_one_byte() {
        let bytes = SimdBp128.encode_values(&[0u32; 100]).unwrap();
        assert_eq!(bytes, vec![0u8]);
        assert_eq!(SimdBp128.decode_values(&bytes, 100), vec![0u32; 100]);
    }

    #[test]
    fn one_outlier_widens_whole_block() {
        let mut values = vec![1u32; 128];
        values[64] = 1 << 30;
        let bytes = SimdBp128.encode_values(&values).unwrap();
        // width 31 for 128 values + 1 header byte.
        assert_eq!(bytes.len(), 1 + (128usize * 31).div_ceil(8));
        assert_eq!(SimdBp128.decode_values(&bytes, 128), values);
    }

    #[test]
    fn multi_block_widths_are_independent() {
        let mut values = vec![1u32; 256];
        for v in values.iter_mut().take(128) {
            *v = 1 << 20;
        }
        let bytes = SimdBp128.encode_values(&values).unwrap();
        let expected = 1 + (128usize * 21).div_ceil(8) + 1 + 128usize.div_ceil(8);
        assert_eq!(bytes.len(), expected);
        assert_eq!(SimdBp128.decode_values(&bytes, 256), values);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(values in proptest::collection::vec(0u32..u32::MAX, 0..500)) {
            let bytes = SimdBp128.encode_values(&values).unwrap();
            prop_assert_eq!(SimdBp128.decode_values(&bytes, values.len()), values);
        }
    }
}
