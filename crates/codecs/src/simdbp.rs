//! SIMD-BP128-style bit-packing (Lemire & Boytsov 2015): 128-value blocks,
//! one byte of width metadata per block, no exceptions. This is the layout
//! family behind the paper's "SIMDPfor" column; the SIMD lane reordering of
//! the original changes decode speed, not size, so a scalar decoder is
//! faithful for compression-ratio purposes.

use iiu_index::bitpack::{bits_for, BitReader, BitWriter};

use crate::{deltas, try_prefix_sums, Codec, CodecError};

const NAME: &str = "SIMD-BP128";

/// Values per block.
pub const BP_BLOCK_LEN: usize = 128;

/// The SIMD-BP128-style codec.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimdBp128;

impl SimdBp128 {
    fn encode_seq(values: &[u32]) -> Vec<u8> {
        let mut out = Vec::new();
        for chunk in values.chunks(BP_BLOCK_LEN) {
            let width = chunk.iter().copied().map(bits_for).max().unwrap_or(0);
            out.push(width);
            let mut w = BitWriter::new();
            for &v in chunk {
                w.write(v, width);
            }
            out.extend_from_slice(&w.finish());
        }
        out
    }

    /// Checked decoder: impossible widths and short blocks become errors.
    fn try_decode_seq(bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        let mut out = Vec::with_capacity(n);
        let mut pos = 0usize;
        let mut left = n;
        while left > 0 {
            let take = left.min(BP_BLOCK_LEN);
            let width = crate::take_u8(bytes, &mut pos, NAME, "block bitwidth")?;
            if width > 32 {
                return Err(CodecError::Malformed {
                    codec: NAME,
                    what: "block bitwidth exceeds 32",
                });
            }
            let block_bytes = (take * width as usize).div_ceil(8);
            let slice = crate::take(bytes, &mut pos, block_bytes, NAME, "packed block")?;
            let mut r = BitReader::new(slice);
            out.extend((0..take).map(|_| r.read(width)));
            left -= take;
        }
        Ok(out)
    }
}

impl Codec for SimdBp128 {
    fn name(&self) -> &'static str {
        "SIMD-BP128"
    }

    fn encode_sorted(&self, doc_ids: &[u32]) -> Vec<u8> {
        Self::encode_seq(&deltas(doc_ids))
    }

    fn encode_values(&self, values: &[u32]) -> Option<Vec<u8>> {
        Some(Self::encode_seq(values))
    }

    fn try_decode_sorted(&self, bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        try_prefix_sums(&Self::try_decode_seq(bytes, n)?, NAME)
    }

    fn try_decode_values(&self, bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        Self::try_decode_seq(bytes, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_zero_block_takes_one_byte() {
        let bytes = SimdBp128.encode_values(&[0u32; 100]).unwrap();
        assert_eq!(bytes, vec![0u8]);
        assert_eq!(SimdBp128.decode_values(&bytes, 100), vec![0u32; 100]);
    }

    #[test]
    fn one_outlier_widens_whole_block() {
        let mut values = vec![1u32; 128];
        values[64] = 1 << 30;
        let bytes = SimdBp128.encode_values(&values).unwrap();
        // width 31 for 128 values + 1 header byte.
        assert_eq!(bytes.len(), 1 + (128usize * 31).div_ceil(8));
        assert_eq!(SimdBp128.decode_values(&bytes, 128), values);
    }

    #[test]
    fn multi_block_widths_are_independent() {
        let mut values = vec![1u32; 256];
        for v in values.iter_mut().take(128) {
            *v = 1 << 20;
        }
        let bytes = SimdBp128.encode_values(&values).unwrap();
        let expected = 1 + (128usize * 21).div_ceil(8) + 1 + 128usize.div_ceil(8);
        assert_eq!(bytes.len(), expected);
        assert_eq!(SimdBp128.decode_values(&bytes, 256), values);
    }

    #[test]
    fn try_decode_rejects_wide_width_and_short_block() {
        assert!(matches!(
            SimdBp128.try_decode_values(&[33], 1),
            Err(CodecError::Malformed { .. })
        ));
        // width 8 promises `take` bytes, but only one follows.
        assert!(matches!(
            SimdBp128.try_decode_values(&[8, 0xaa], 5),
            Err(CodecError::Truncated { .. })
        ));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(values in proptest::collection::vec(0u32..u32::MAX, 0..500)) {
            let bytes = SimdBp128.encode_values(&values).unwrap();
            prop_assert_eq!(SimdBp128.decode_values(&bytes, values.len()), values);
        }
    }
}
