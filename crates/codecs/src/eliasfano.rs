//! Elias-Fano quasi-succinct encoding of sorted sequences (Vigna 2013).
//!
//! Splits every value into `l = ⌊log₂(u/n)⌋` low bits (bit-packed) and the
//! remaining high bits (unary-coded in a bitvector with one 1-bit per
//! element). Space is within half a bit per element of the information-
//! theoretic optimum for a monotone sequence.

use iiu_index::bitpack::{BitReader, BitWriter};

use crate::Codec;

/// The Elias-Fano codec. Sorted sequences only — [`Codec::encode_values`]
/// returns `None`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EliasFano;

impl EliasFano {
    fn low_bits(universe: u64, n: usize) -> u8 {
        if n == 0 || universe <= n as u64 {
            0
        } else {
            (universe / n as u64).ilog2() as u8
        }
    }
}

impl Codec for EliasFano {
    fn name(&self) -> &'static str {
        "Elias-Fano"
    }

    fn encode_sorted(&self, doc_ids: &[u32]) -> Vec<u8> {
        let mut out = Vec::new();
        let n = doc_ids.len();
        if n == 0 {
            out.extend_from_slice(&0u32.to_le_bytes());
            out.push(0);
            return out;
        }
        let last = *doc_ids.last().expect("non-empty");
        let universe = u64::from(last) + 1;
        let l = Self::low_bits(universe, n);
        out.extend_from_slice(&last.to_le_bytes());
        out.push(l);

        // Low halves, l bits each, byte-aligned as a group.
        let mut low = BitWriter::new();
        for &v in doc_ids {
            low.write(v & low_mask(l), l);
        }
        out.extend_from_slice(&low.finish());

        // High halves: element i sets bit (i + (v_i >> l)).
        let high_len_bits = n + (last >> l) as usize + 1;
        let mut high = vec![0u8; high_len_bits.div_ceil(8)];
        for (i, &v) in doc_ids.iter().enumerate() {
            let bit = i + (v >> l) as usize;
            high[bit / 8] |= 1 << (bit % 8);
        }
        out.extend_from_slice(&high);
        out
    }

    fn decode_sorted(&self, bytes: &[u8], n: usize) -> Vec<u32> {
        if n == 0 {
            return Vec::new();
        }
        let last = u32::from_le_bytes(bytes[0..4].try_into().expect("4-byte last"));
        let l = bytes[4];
        let mut pos = 5usize;
        let low_bytes = (n * l as usize).div_ceil(8);
        let mut low = BitReader::new(&bytes[pos..pos + low_bytes]);
        let lows: Vec<u32> = (0..n).map(|_| low.read(l)).collect();
        pos += low_bytes;

        let high = &bytes[pos..];
        let mut out = Vec::with_capacity(n);
        let mut i = 0usize;
        let mut bit = 0usize;
        while i < n {
            debug_assert!(bit / 8 < high.len(), "ran out of high bits");
            if high[bit / 8] & (1 << (bit % 8)) != 0 {
                let hi = (bit - i) as u32;
                out.push((hi << l) | lows[i]);
                i += 1;
            }
            bit += 1;
        }
        debug_assert_eq!(*out.last().expect("n > 0"), last);
        out
    }

    fn encode_values(&self, _values: &[u32]) -> Option<Vec<u8>> {
        None
    }

    fn decode_values(&self, _bytes: &[u8], _n: usize) -> Vec<u32> {
        panic!("Elias-Fano only supports sorted sequences");
    }
}

fn low_mask(l: u8) -> u32 {
    if l == 0 {
        0
    } else if l >= 32 {
        u32::MAX
    } else {
        (1u32 << l) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn low_bits_formula() {
        assert_eq!(EliasFano::low_bits(1024, 16), 6); // log2(64)
        assert_eq!(EliasFano::low_bits(10, 10), 0);
        assert_eq!(EliasFano::low_bits(0, 0), 0);
        assert_eq!(EliasFano::low_bits(5, 100), 0);
    }

    #[test]
    fn empty_sequence() {
        let bytes = EliasFano.encode_sorted(&[]);
        assert_eq!(EliasFano.decode_sorted(&bytes, 0), Vec::<u32>::new());
    }

    #[test]
    fn dense_sequence_roundtrip() {
        let ids: Vec<u32> = (0..1000).collect();
        let bytes = EliasFano.encode_sorted(&ids);
        assert_eq!(EliasFano.decode_sorted(&bytes, ids.len()), ids);
        // Dense range: ~2 bits/element, far below 4 bytes/element raw.
        assert!(bytes.len() < 1000);
    }

    #[test]
    fn sparse_sequence_roundtrip() {
        let ids: Vec<u32> = (0..100).map(|i| i * 1_000_003).collect();
        let bytes = EliasFano.encode_sorted(&ids);
        assert_eq!(EliasFano.decode_sorted(&bytes, ids.len()), ids);
    }

    #[test]
    fn values_unsupported() {
        assert!(EliasFano.encode_values(&[3, 1, 2]).is_none());
    }

    #[test]
    fn near_optimal_space() {
        // EF uses at most n * (2 + ceil(log2(u/n))) bits + O(1).
        let ids: Vec<u32> = (0..10_000u32).map(|i| i * 37).collect();
        let bytes = EliasFano.encode_sorted(&ids);
        let u = f64::from(*ids.last().unwrap()) + 1.0;
        let n = ids.len() as f64;
        let bound_bits = n * (2.0 + (u / n).log2().ceil()) + 64.0;
        assert!((bytes.len() as f64) * 8.0 <= bound_bits * 1.05);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(ids in proptest::collection::btree_set(0u32..1 << 30, 1..500)) {
            let ids: Vec<u32> = ids.into_iter().collect();
            let bytes = EliasFano.encode_sorted(&ids);
            prop_assert_eq!(EliasFano.decode_sorted(&bytes, ids.len()), ids);
        }
    }
}
