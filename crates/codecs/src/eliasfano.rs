//! Elias-Fano quasi-succinct encoding of sorted sequences (Vigna 2013).
//!
//! Splits every value into `l = ⌊log₂(u/n)⌋` low bits (bit-packed) and the
//! remaining high bits (unary-coded in a bitvector with one 1-bit per
//! element). Space is within half a bit per element of the information-
//! theoretic optimum for a monotone sequence.

use iiu_index::bitpack::{BitReader, BitWriter};

use crate::{Codec, CodecError};

const NAME: &str = "Elias-Fano";

/// The Elias-Fano codec. Sorted sequences only — [`Codec::encode_values`]
/// returns `None`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EliasFano;

impl EliasFano {
    fn low_bits(universe: u64, n: usize) -> u8 {
        if n == 0 || universe <= n as u64 {
            0
        } else {
            (universe / n as u64).ilog2() as u8
        }
    }

    /// Checked decoder: every read is bounds-checked and the stored last
    /// value must match the reconstruction.
    fn try_decode(bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        if n == 0 {
            return Ok(Vec::new());
        }
        let mut pos = 0usize;
        let last = crate::take_u32(bytes, &mut pos, NAME, "last value")?;
        let l = crate::take_u8(bytes, &mut pos, NAME, "low bitwidth")?;
        if l > 32 {
            return Err(CodecError::Malformed {
                codec: NAME,
                what: "low bitwidth exceeds 32",
            });
        }
        let low_len = n
            .checked_mul(l as usize)
            .map(|bits| bits.div_ceil(8))
            .ok_or(CodecError::Malformed { codec: NAME, what: "low-bits length overflows" })?;
        let low_slice = crate::take(bytes, &mut pos, low_len, NAME, "low bits")?;
        let mut low = BitReader::new(low_slice);
        let lows: Vec<u32> = (0..n).map(|_| low.read(l)).collect();

        let high = &bytes[pos..];
        let mut out = Vec::with_capacity(n);
        let mut i = 0usize;
        let mut bit = 0usize;
        while i < n {
            let byte = *high
                .get(bit / 8)
                .ok_or(CodecError::Truncated { codec: NAME, what: "high-bits bitvector" })?;
            if byte & (1 << (bit % 8)) != 0 {
                let hi = (bit - i) as u128;
                let v = (hi << l) | u128::from(lows[i]);
                let v = u32::try_from(v).map_err(|_| CodecError::Malformed {
                    codec: NAME,
                    what: "decoded value overflows u32",
                })?;
                out.push(v);
                i += 1;
            }
            bit += 1;
        }
        if out.last() != Some(&last) {
            return Err(CodecError::Malformed {
                codec: NAME,
                what: "stored last value disagrees with decoded sequence",
            });
        }
        Ok(out)
    }
}

impl Codec for EliasFano {
    fn name(&self) -> &'static str {
        "Elias-Fano"
    }

    fn encode_sorted(&self, doc_ids: &[u32]) -> Vec<u8> {
        let mut out = Vec::new();
        let n = doc_ids.len();
        if n == 0 {
            out.extend_from_slice(&0u32.to_le_bytes());
            out.push(0);
            return out;
        }
        let last = doc_ids[n - 1];
        let universe = u64::from(last) + 1;
        let l = Self::low_bits(universe, n);
        out.extend_from_slice(&last.to_le_bytes());
        out.push(l);

        // Low halves, l bits each, byte-aligned as a group.
        let mut low = BitWriter::new();
        for &v in doc_ids {
            low.write(v & low_mask(l), l);
        }
        out.extend_from_slice(&low.finish());

        // High halves: element i sets bit (i + (v_i >> l)).
        let high_len_bits = n + (last >> l) as usize + 1;
        let mut high = vec![0u8; high_len_bits.div_ceil(8)];
        for (i, &v) in doc_ids.iter().enumerate() {
            let bit = i + (v >> l) as usize;
            high[bit / 8] |= 1 << (bit % 8);
        }
        out.extend_from_slice(&high);
        out
    }

    fn encode_values(&self, _values: &[u32]) -> Option<Vec<u8>> {
        None
    }

    fn try_decode_sorted(&self, bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        Self::try_decode(bytes, n)
    }

    fn try_decode_values(&self, _bytes: &[u8], _n: usize) -> Result<Vec<u32>, CodecError> {
        Err(CodecError::Unsupported { codec: NAME })
    }
}

fn low_mask(l: u8) -> u32 {
    if l == 0 {
        0
    } else if l >= 32 {
        u32::MAX
    } else {
        (1u32 << l) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn low_bits_formula() {
        assert_eq!(EliasFano::low_bits(1024, 16), 6); // log2(64)
        assert_eq!(EliasFano::low_bits(10, 10), 0);
        assert_eq!(EliasFano::low_bits(0, 0), 0);
        assert_eq!(EliasFano::low_bits(5, 100), 0);
    }

    #[test]
    fn empty_sequence() {
        let bytes = EliasFano.encode_sorted(&[]);
        assert_eq!(EliasFano.decode_sorted(&bytes, 0), Vec::<u32>::new());
    }

    #[test]
    fn dense_sequence_roundtrip() {
        let ids: Vec<u32> = (0..1000).collect();
        let bytes = EliasFano.encode_sorted(&ids);
        assert_eq!(EliasFano.decode_sorted(&bytes, ids.len()), ids);
        // Dense range: ~2 bits/element, far below 4 bytes/element raw.
        assert!(bytes.len() < 1000);
    }

    #[test]
    fn sparse_sequence_roundtrip() {
        let ids: Vec<u32> = (0..100).map(|i| i * 1_000_003).collect();
        let bytes = EliasFano.encode_sorted(&ids);
        assert_eq!(EliasFano.decode_sorted(&bytes, ids.len()), ids);
    }

    #[test]
    fn values_unsupported() {
        assert!(EliasFano.encode_values(&[3, 1, 2]).is_none());
        assert!(matches!(
            EliasFano.try_decode_values(&[], 0),
            Err(CodecError::Unsupported { .. })
        ));
    }

    #[test]
    fn try_decode_catches_short_high_bits_and_bad_last() {
        let ids: Vec<u32> = (0..50).map(|i| i * 11).collect();
        let bytes = EliasFano.encode_sorted(&ids);
        // Drop the tail of the high-bits bitvector.
        assert!(matches!(
            EliasFano.try_decode_sorted(&bytes[..bytes.len() - 3], ids.len()),
            Err(CodecError::Truncated { .. })
        ));
        // Corrupt the stored last value: structure decodes, but the
        // integrity cross-check fires.
        let mut corrupt = bytes.clone();
        corrupt[0] ^= 0xff;
        assert!(EliasFano.try_decode_sorted(&corrupt, ids.len()).is_err());
    }

    #[test]
    fn near_optimal_space() {
        // EF uses at most n * (2 + ceil(log2(u/n))) bits + O(1).
        let ids: Vec<u32> = (0..10_000u32).map(|i| i * 37).collect();
        let bytes = EliasFano.encode_sorted(&ids);
        let u = f64::from(*ids.last().unwrap()) + 1.0;
        let n = ids.len() as f64;
        let bound_bits = n * (2.0 + (u / n).log2().ceil()) + 64.0;
        assert!((bytes.len() as f64) * 8.0 <= bound_bits * 1.05);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(ids in proptest::collection::btree_set(0u32..1 << 30, 1..500)) {
            let ids: Vec<u32> = ids.into_iter().collect();
            let bytes = EliasFano.encode_sorted(&ids);
            prop_assert_eq!(EliasFano.decode_sorted(&bytes, ids.len()), ids);
        }
    }
}
