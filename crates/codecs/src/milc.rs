//! MILC-style offset encoding (Wang et al., VLDB 2017).
//!
//! MILC's key departure from the d-gap family is *offset-based* encoding:
//! every element in a block stores its difference from the block's first
//! element rather than from its predecessor, so any element can be decoded
//! without a prefix sum (fast membership testing). This reproduction keeps
//! that storage scheme — fixed blocks, a raw 32-bit base, and bit-packed
//! offsets — and omits MILC's cache-line alignment and SIMD layout tricks,
//! which affect speed rather than size.

use iiu_index::bitpack::{bits_for, BitReader, BitWriter};

use crate::{Codec, CodecError};

const NAME: &str = "MILC";

/// Default block length (MILC's dynamic partitioning averages near this;
/// the IIU paper's own dynamic partitioner is evaluated separately).
pub const MILC_BLOCK_LEN: usize = 128;

/// The MILC-style codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Milc {
    /// Elements per block.
    pub block_len: usize,
}

impl Default for Milc {
    fn default() -> Self {
        Milc { block_len: MILC_BLOCK_LEN }
    }
}

impl Milc {
    /// Encodes one block: `[base: u32][width: u8]` then `len` packed
    /// offsets from `base` (`base` itself is the block minimum).
    fn encode_block(out: &mut Vec<u8>, values: &[u32], base: u32) {
        let width = values.iter().map(|&v| bits_for(v - base)).max().unwrap_or(0);
        out.extend_from_slice(&base.to_le_bytes());
        out.push(width);
        let mut w = BitWriter::new();
        for &v in values {
            w.write(v - base, width);
        }
        out.extend_from_slice(&w.finish());
    }

    /// Checked block decoder: bad widths, short inputs and offset
    /// overflows become errors instead of panics.
    fn try_decode_block(
        bytes: &[u8],
        pos: &mut usize,
        n: usize,
    ) -> Result<Vec<u32>, CodecError> {
        let base = crate::take_u32(bytes, pos, NAME, "block base")?;
        let width = crate::take_u8(bytes, pos, NAME, "offset bitwidth")?;
        if width > 32 {
            return Err(CodecError::Malformed {
                codec: NAME,
                what: "offset bitwidth exceeds 32",
            });
        }
        let block_bytes = n
            .checked_mul(width as usize)
            .map(|bits| bits.div_ceil(8))
            .ok_or(CodecError::Malformed { codec: NAME, what: "block length overflows" })?;
        let slice = crate::take(bytes, pos, block_bytes, NAME, "packed offsets")?;
        let mut r = BitReader::new(slice);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let v = base.checked_add(r.read(width)).ok_or(CodecError::Malformed {
                codec: NAME,
                what: "base plus offset overflows u32",
            })?;
            out.push(v);
        }
        Ok(out)
    }

    fn try_decode_seq(&self, bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        if self.block_len == 0 {
            return Err(CodecError::Malformed { codec: NAME, what: "block length is zero" });
        }
        let mut out = Vec::with_capacity(n);
        let mut pos = 0usize;
        let mut left = n;
        while left > 0 {
            let take = left.min(self.block_len);
            out.extend(Self::try_decode_block(bytes, &mut pos, take)?);
            left -= take;
        }
        Ok(out)
    }
}

impl Codec for Milc {
    fn name(&self) -> &'static str {
        "MILC"
    }

    fn encode_sorted(&self, doc_ids: &[u32]) -> Vec<u8> {
        let mut out = Vec::new();
        for chunk in doc_ids.chunks(self.block_len) {
            Self::encode_block(&mut out, chunk, chunk[0]);
        }
        out
    }

    fn encode_values(&self, values: &[u32]) -> Option<Vec<u8>> {
        // Offset encoding generalizes to unsorted data by taking the block
        // minimum as the base.
        let mut out = Vec::new();
        for chunk in values.chunks(self.block_len) {
            // chunks() never yields an empty slice, so 0 is unreachable.
            let base = chunk.iter().copied().min().unwrap_or(0);
            Self::encode_block(&mut out, chunk, base);
        }
        Some(out)
    }

    fn try_decode_sorted(&self, bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        self.try_decode_seq(bytes, n)
    }

    fn try_decode_values(&self, bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        self.try_decode_seq(bytes, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn offsets_are_relative_to_block_base() {
        // Values near 1e9 but tightly clustered: offsets stay narrow.
        let ids: Vec<u32> = (0..128).map(|i| 1_000_000_000 + i * 3).collect();
        let bytes = Milc::default().encode_sorted(&ids);
        // base(4) + width(1) + 128 * 9 bits (max offset 381 -> 9 bits).
        assert_eq!(bytes.len(), 5 + (128usize * 9).div_ceil(8));
        assert_eq!(Milc::default().decode_sorted(&bytes, 128), ids);
    }

    #[test]
    fn random_access_within_block_needs_no_prefix_sum() {
        // Decoding a block yields absolute values directly — the MILC
        // membership-testing property.
        let ids: Vec<u32> = (0..64).map(|i| i * i).collect();
        let bytes = Milc::default().encode_sorted(&ids);
        let mut pos = 0;
        let block = Milc::try_decode_block(&bytes, &mut pos, 64).unwrap();
        assert_eq!(block[10], 100);
        assert_eq!(block[63], 63 * 63);
    }

    #[test]
    fn unsorted_values_use_min_base() {
        let values = vec![50u32, 10, 30, 10, 90];
        let bytes = Milc::default().encode_values(&values).unwrap();
        assert_eq!(Milc::default().decode_values(&bytes, 5), values);
    }

    #[test]
    fn try_decode_rejects_bad_width_and_overflow() {
        // width byte of 40 is impossible.
        let mut bytes = vec![0u8; 5];
        bytes[4] = 40;
        assert!(matches!(
            Milc::default().try_decode_sorted(&bytes, 1),
            Err(CodecError::Malformed { .. })
        ));
        // base u32::MAX with a non-zero offset overflows.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.push(1); // width 1
        bytes.push(0b11); // two offsets: 1 and 1
        assert!(matches!(
            Milc::default().try_decode_sorted(&bytes, 2),
            Err(CodecError::Malformed { .. })
        ));
    }

    #[test]
    fn custom_block_len() {
        let codec = Milc { block_len: 8 };
        let ids: Vec<u32> = (0..100).map(|i| i * 5).collect();
        let bytes = codec.encode_sorted(&ids);
        assert_eq!(codec.decode_sorted(&bytes, 100), ids);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_sorted(ids in proptest::collection::btree_set(0u32..u32::MAX, 1..400)) {
            let ids: Vec<u32> = ids.into_iter().collect();
            let bytes = Milc::default().encode_sorted(&ids);
            prop_assert_eq!(Milc::default().decode_sorted(&bytes, ids.len()), ids);
        }
    }
}
