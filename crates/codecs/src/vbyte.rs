//! VByte: classic byte-aligned variable-length integers (Thiel & Heaps
//! 1972; Cutting & Pedersen 1989). Each byte carries 7 payload bits; the
//! high bit marks continuation.

use crate::{deltas, try_prefix_sums, Codec, CodecError};

const NAME: &str = "VByte";

/// The VByte codec. Sorted sequences are delta-encoded first.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VByte;

impl VByte {
    /// Appends one varint to `out`.
    pub fn put(out: &mut Vec<u8>, mut v: u32) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                break;
            }
            out.push(byte | 0x80);
        }
    }

    /// Reads one varint from `bytes` starting at `*pos`, advancing `*pos`.
    ///
    /// # Panics
    ///
    /// Panics on truncated input or a varint longer than 5 bytes. Use
    /// [`VByte::try_get`] for untrusted bytes.
    pub fn get(bytes: &[u8], pos: &mut usize) -> u32 {
        match Self::try_get(bytes, pos) {
            Ok(v) => v,
            Err(CodecError::Truncated { .. }) => panic!("truncated varint"),
            Err(_) => panic!("varint too long for u32"),
        }
    }

    /// Checked varint read: reports truncation or an over-long varint
    /// instead of panicking.
    pub fn try_get(bytes: &[u8], pos: &mut usize) -> Result<u32, CodecError> {
        let mut v: u32 = 0;
        let mut shift = 0u32;
        loop {
            if shift > 28 {
                return Err(CodecError::Malformed {
                    codec: NAME,
                    what: "varint longer than 5 bytes",
                });
            }
            let byte = *bytes
                .get(*pos)
                .ok_or(CodecError::Truncated { codec: NAME, what: "varint" })?;
            *pos += 1;
            v |= u32::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn encode_seq(values: &[u32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(values.len());
        for &v in values {
            Self::put(&mut out, v);
        }
        out
    }

    fn try_decode_seq(bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        // Every varint is at least one byte, so a sane capacity bound
        // exists even when `n` is far larger than the input.
        let mut out = Vec::with_capacity(n.min(bytes.len()));
        let mut pos = 0usize;
        for _ in 0..n {
            out.push(Self::try_get(bytes, &mut pos)?);
        }
        Ok(out)
    }
}

impl Codec for VByte {
    fn name(&self) -> &'static str {
        "VByte"
    }

    fn encode_sorted(&self, doc_ids: &[u32]) -> Vec<u8> {
        Self::encode_seq(&deltas(doc_ids))
    }

    fn encode_values(&self, values: &[u32]) -> Option<Vec<u8>> {
        Some(Self::encode_seq(values))
    }

    fn try_decode_sorted(&self, bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        try_prefix_sums(&Self::try_decode_seq(bytes, n)?, NAME)
    }

    fn try_decode_values(&self, bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        Self::try_decode_seq(bytes, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_byte_values() {
        let mut out = Vec::new();
        VByte::put(&mut out, 0);
        VByte::put(&mut out, 127);
        assert_eq!(out, vec![0, 127]);
    }

    #[test]
    fn multi_byte_values() {
        let mut out = Vec::new();
        VByte::put(&mut out, 128);
        assert_eq!(out, vec![0x80, 0x01]);
        let mut pos = 0;
        assert_eq!(VByte::get(&out, &mut pos), 128);
        assert_eq!(pos, 2);
    }

    #[test]
    fn max_u32_takes_five_bytes() {
        let mut out = Vec::new();
        VByte::put(&mut out, u32::MAX);
        assert_eq!(out.len(), 5);
        let mut pos = 0;
        assert_eq!(VByte::get(&out, &mut pos), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_input_panics() {
        let mut pos = 0;
        let _ = VByte::get(&[0x80], &mut pos);
    }

    #[test]
    fn try_get_reports_truncation_and_overlength() {
        let mut pos = 0;
        assert!(matches!(
            VByte::try_get(&[0x80], &mut pos),
            Err(CodecError::Truncated { .. })
        ));
        let mut pos = 0;
        assert!(matches!(
            VByte::try_get(&[0xff, 0xff, 0xff, 0xff, 0xff, 0x01], &mut pos),
            Err(CodecError::Malformed { .. })
        ));
    }

    #[test]
    fn sorted_encoding_uses_gaps() {
        // Dense docIDs with tiny gaps should take 1 byte each after the first.
        let ids: Vec<u32> = (1_000_000..1_000_100).collect();
        let bytes = VByte.encode_sorted(&ids);
        assert!(bytes.len() <= 3 + 99);
        assert_eq!(VByte.decode_sorted(&bytes, ids.len()), ids);
    }

    proptest! {
        #[test]
        fn prop_single_value_roundtrip(v in 0u32..=u32::MAX) {
            let mut out = Vec::new();
            VByte::put(&mut out, v);
            let mut pos = 0;
            prop_assert_eq!(VByte::get(&out, &mut pos), v);
            prop_assert_eq!(pos, out.len());
        }
    }
}
