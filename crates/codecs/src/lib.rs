//! Baseline inverted-list compression codecs (paper §2.1, §6; compared in
//! Table 2).
//!
//! The IIU paper benchmarks its bit-packing scheme against the classic
//! integer codecs used by search engines. This crate implements the
//! comparison set from scratch:
//!
//! * [`VByte`] — byte-aligned varints (Cutting & Pedersen);
//! * [`StreamVByte`] — varints with the control bits split into their own
//!   stream for branch-free, SIMD-friendly decode (Lemire, Kurz & Rupp);
//! * [`Pfor`] — classic PForDelta with patched 32-bit exceptions and a
//!   linked exception chain (Zukowski et al.);
//! * [`NewPfor`] — exception low bits kept in the slot array, positions and
//!   high bits compressed separately (Yan et al.);
//! * [`OptPfor`] — per-block bitwidth chosen by exhaustive size
//!   minimization (Yan et al.);
//! * [`SimdBp128`] — exception-free 128-value bit-packing in the style of
//!   SIMD-BP128 (Lemire & Boytsov), the layout family the paper's
//!   "SIMDPfor" column represents;
//! * [`Simple9`] — selector-coded 32-bit words (Anh & Moffat), the family
//!   NewPfor's side arrays use;
//! * [`EliasFano`] — quasi-succinct encoding of sorted sequences (Vigna);
//! * [`Milc`] — offset-from-block-base encoding in the spirit of MILC
//!   (Wang et al.), without its cache/SIMD layout tricks.
//!
//! All codecs speak [`Codec`]: sorted docID sequences via
//! `encode_sorted`/`decode_sorted`, and (where supported) arbitrary
//! unsorted value sequences (term frequencies) via
//! `encode_values`/`decode_values`. NewPfor/OptPfor compress their side
//! arrays with [`Simple9`] (Simple16 in the original — a sibling with the
//! same selector-coded structure).
//!
//! Two decode surfaces exist: the convenience `decode_*` methods keep
//! their documented panicking contract for trusted, self-produced bytes,
//! and the checked `try_decode_*` methods accept arbitrary (possibly
//! corrupt) bytes and return [`CodecError`] instead of panicking. Only the
//! checked paths are implemented per codec; the panicking methods are
//! default trait wrappers over them, so there is a single decoder per
//! format and no `unwrap`/`expect` anywhere on a decode path.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::error::Error;
use std::fmt;

pub mod eliasfano;
pub mod milc;
pub mod pfor;
pub mod simdbp;
pub mod simple9;
pub mod stream_vbyte;
pub mod vbyte;

pub use eliasfano::EliasFano;
pub use milc::Milc;
pub use pfor::{NewPfor, OptPfor, Pfor};
pub use simdbp::SimdBp128;
pub use simple9::Simple9;
pub use stream_vbyte::StreamVByte;
pub use vbyte::VByte;

/// Errors produced by the checked `try_decode_*` codec paths.
///
/// The checked decoders never panic and never read out of bounds: any
/// byte sequence either decodes to a value vector or maps to one of these
/// variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The input ended before the requested number of values was decoded.
    Truncated {
        /// Codec that was decoding.
        codec: &'static str,
        /// What was being read when the bytes ran out.
        what: &'static str,
    },
    /// The input is structurally invalid: an impossible bitwidth or
    /// selector, an out-of-range exception position, a value overflow.
    Malformed {
        /// Codec that was decoding.
        codec: &'static str,
        /// Which invariant the bytes violate.
        what: &'static str,
    },
    /// The codec has no format for this stream kind (e.g. Elias-Fano
    /// only encodes sorted sequences).
    Unsupported {
        /// Codec that was asked to decode.
        codec: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { codec, what } => {
                write!(f, "{codec}: input truncated while reading {what}")
            }
            CodecError::Malformed { codec, what } => {
                write!(f, "{codec}: malformed input ({what})")
            }
            CodecError::Unsupported { codec } => {
                write!(f, "{codec}: stream kind not supported by this codec")
            }
        }
    }
}

impl Error for CodecError {}

/// Takes `len` bytes at `*pos`, advancing it, or reports truncation.
pub(crate) fn take<'a>(
    bytes: &'a [u8],
    pos: &mut usize,
    len: usize,
    codec: &'static str,
    what: &'static str,
) -> Result<&'a [u8], CodecError> {
    let end = pos
        .checked_add(len)
        .filter(|&end| end <= bytes.len())
        .ok_or(CodecError::Truncated { codec, what })?;
    let slice = &bytes[*pos..end];
    *pos = end;
    Ok(slice)
}

/// Reads a little-endian u32 at `*pos`, advancing it.
pub(crate) fn take_u32(
    bytes: &[u8],
    pos: &mut usize,
    codec: &'static str,
    what: &'static str,
) -> Result<u32, CodecError> {
    let s = take(bytes, pos, 4, codec, what)?;
    Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

/// Reads one byte at `*pos`, advancing it.
pub(crate) fn take_u8(
    bytes: &[u8],
    pos: &mut usize,
    codec: &'static str,
    what: &'static str,
) -> Result<u8, CodecError> {
    Ok(take(bytes, pos, 1, codec, what)?[0])
}

/// A lossless integer-sequence codec.
///
/// Implementations must round-trip exactly:
/// `decode_sorted(&encode_sorted(x), x.len()) == x` for strictly increasing
/// `x`, and likewise for `encode_values` when supported.
pub trait Codec {
    /// Short human-readable name (Table 2 column header).
    fn name(&self) -> &'static str;

    /// Compresses a strictly increasing docID sequence.
    ///
    /// # Panics
    ///
    /// May panic if the input is not strictly increasing.
    fn encode_sorted(&self, doc_ids: &[u32]) -> Vec<u8>;

    /// Decompresses `n` docIDs produced by [`Codec::encode_sorted`].
    ///
    /// Convenience wrapper over [`Codec::try_decode_sorted`] for trusted,
    /// self-produced bytes.
    ///
    /// # Panics
    ///
    /// Panics if the bytes are truncated or malformed; use
    /// [`Codec::try_decode_sorted`] for untrusted input.
    fn decode_sorted(&self, bytes: &[u8], n: usize) -> Vec<u32> {
        match self.try_decode_sorted(bytes, n) {
            Ok(values) => values,
            Err(e) => panic!("{}::decode_sorted on invalid input: {e}", self.name()),
        }
    }

    /// Compresses an arbitrary (possibly unsorted) value sequence, e.g.
    /// term frequencies. Returns `None` for codecs that only handle sorted
    /// data (Elias-Fano); Table 2 then falls back to VByte for the tf
    /// stream, mirroring the paper's remark that the Pfor family "require a
    /// separate scheme for compressing term frequency".
    fn encode_values(&self, values: &[u32]) -> Option<Vec<u8>>;

    /// Decompresses `n` values produced by [`Codec::encode_values`].
    ///
    /// Convenience wrapper over [`Codec::try_decode_values`] for trusted,
    /// self-produced bytes.
    ///
    /// # Panics
    ///
    /// Panics if the bytes are truncated or malformed, or if the codec has
    /// no unsorted-value format (callers should have received `None` from
    /// `encode_values`); use [`Codec::try_decode_values`] for untrusted
    /// input.
    fn decode_values(&self, bytes: &[u8], n: usize) -> Vec<u32> {
        match self.try_decode_values(bytes, n) {
            Ok(values) => values,
            Err(e) => panic!("{}::decode_values on invalid input: {e}", self.name()),
        }
    }

    /// Checked counterpart of [`Codec::decode_sorted`]: decodes `n` docIDs
    /// from untrusted bytes. Never panics — truncated or malformed input
    /// yields a [`CodecError`] instead.
    fn try_decode_sorted(&self, bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError>;

    /// Checked counterpart of [`Codec::decode_values`]. Codecs without an
    /// unsorted-value format return [`CodecError::Unsupported`]. Never
    /// panics.
    fn try_decode_values(&self, bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError>;
}

/// Every codec in the Table 2 comparison, in the paper's column order.
pub fn all_codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(Pfor),
        Box::new(NewPfor),
        Box::new(OptPfor),
        Box::new(SimdBp128),
        Box::new(VByte),
        Box::new(StreamVByte),
        Box::new(Simple9),
        Box::new(EliasFano),
        Box::new(Milc::default()),
    ]
}

/// Delta-encodes a strictly increasing sequence (first element kept).
pub(crate) fn deltas(doc_ids: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(doc_ids.len());
    let mut prev = 0u32;
    for (i, &d) in doc_ids.iter().enumerate() {
        if i == 0 {
            out.push(d);
        } else {
            assert!(d > prev, "docIDs must be strictly increasing");
            out.push(d - prev);
        }
        prev = d;
    }
    out
}

/// Inverse of [`deltas`]. Production decode paths use the
/// overflow-checked [`try_prefix_sums`]; tests keep this for building
/// expected sequences.
#[cfg(test)]
pub(crate) fn prefix_sums(gaps: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(gaps.len());
    let mut acc = 0u32;
    for (i, &g) in gaps.iter().enumerate() {
        acc = if i == 0 { g } else { acc + g };
        out.push(acc);
    }
    out
}

/// Overflow-checked inverse of [`deltas`] for the `try_decode_*` paths:
/// corrupt gaps whose running sum leaves u32 are reported, not wrapped.
pub(crate) fn try_prefix_sums(
    gaps: &[u32],
    codec: &'static str,
) -> Result<Vec<u32>, CodecError> {
    let mut out = Vec::with_capacity(gaps.len());
    let mut acc = 0u32;
    for (i, &g) in gaps.iter().enumerate() {
        acc = if i == 0 {
            g
        } else {
            acc.checked_add(g).ok_or(CodecError::Malformed {
                codec,
                what: "docID prefix sum overflows u32",
            })?
        };
        out.push(acc);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sorted_sample(seed: u64, n: usize, max_gap: u32) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc = 0u32;
        (0..n)
            .map(|_| {
                acc += rng.gen_range(1..=max_gap);
                acc
            })
            .collect()
    }

    #[test]
    fn all_codecs_roundtrip_sorted() {
        for codec in all_codecs() {
            for (seed, n, max_gap) in [
                (1u64, 0usize, 10u32),
                (2, 1, 5),
                (3, 127, 100),
                (4, 128, 100),
                (5, 1000, 1 << 16),
                (6, 300, 2),
            ] {
                let ids = sorted_sample(seed, n, max_gap);
                let bytes = codec.encode_sorted(&ids);
                let back = codec.decode_sorted(&bytes, ids.len());
                assert_eq!(back, ids, "codec {} failed on seed {seed}", codec.name());
            }
        }
    }

    #[test]
    fn all_codecs_roundtrip_values_when_supported() {
        let mut rng = StdRng::seed_from_u64(42);
        let values: Vec<u32> = (0..500).map(|_| rng.gen_range(0..10_000)).collect();
        for codec in all_codecs() {
            if let Some(bytes) = codec.encode_values(&values) {
                assert_eq!(
                    codec.decode_values(&bytes, values.len()),
                    values,
                    "codec {} failed on unsorted values",
                    codec.name()
                );
            }
        }
    }

    #[test]
    fn codec_names_are_distinct() {
        let names: Vec<&str> = all_codecs().iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn clustered_data_compresses_better_than_uniform() {
        // Sanity check on size accounting: small gaps must compress better
        // than large gaps for every block codec.
        for codec in all_codecs() {
            let tight = sorted_sample(7, 4096, 2);
            let sparse = sorted_sample(8, 4096, 1 << 18);
            let t = codec.encode_sorted(&tight).len();
            let s = codec.encode_sorted(&sparse).len();
            assert!(
                t < s,
                "codec {}: tight {t} bytes should beat sparse {s} bytes",
                codec.name()
            );
        }
    }

    #[test]
    fn codec_error_display_and_send_sync() {
        // The full bound callers need to box and send across threads.
        fn assert_error<T: Error + Send + Sync + 'static>() {}
        assert_error::<CodecError>();
        let e = CodecError::Truncated { codec: "VByte", what: "varint" };
        assert!(e.to_string().contains("VByte") && e.to_string().contains("varint"));
        let e = CodecError::Malformed { codec: "Simple9", what: "invalid selector" };
        assert!(e.to_string().contains("selector"));
        let e = CodecError::Unsupported { codec: "Elias-Fano" };
        assert!(e.to_string().contains("Elias-Fano"));
    }

    #[test]
    fn try_decode_matches_legacy_on_valid_input() {
        for codec in all_codecs() {
            let ids = sorted_sample(11, 700, 1 << 12);
            let bytes = codec.encode_sorted(&ids);
            assert_eq!(
                codec.try_decode_sorted(&bytes, ids.len()).unwrap(),
                ids,
                "codec {}",
                codec.name()
            );
            let values: Vec<u32> = (0..700u32).map(|i| (i * 7919) % 5000).collect();
            if let Some(bytes) = codec.encode_values(&values) {
                assert_eq!(
                    codec.try_decode_values(&bytes, values.len()).unwrap(),
                    values,
                    "codec {}",
                    codec.name()
                );
            } else {
                assert!(matches!(
                    codec.try_decode_values(&[], 0).err(),
                    Some(CodecError::Unsupported { .. })
                ));
            }
        }
    }

    #[test]
    fn try_decode_survives_every_single_bit_flip() {
        // Exhaustive single-bit corruption of a real encoding: decoding
        // must return *something* (Ok with different values or Err), and
        // never panic.
        let ids = sorted_sample(13, 200, 50);
        for codec in all_codecs() {
            let bytes = codec.encode_sorted(&ids);
            for byte in 0..bytes.len() {
                for bit in 0..8 {
                    let mut corrupt = bytes.clone();
                    corrupt[byte] ^= 1 << bit;
                    let _ = codec.try_decode_sorted(&corrupt, ids.len());
                }
            }
        }
    }

    #[test]
    fn try_decode_reports_truncation() {
        let ids = sorted_sample(17, 300, 100);
        for codec in all_codecs() {
            let bytes = codec.encode_sorted(&ids);
            let res = codec.try_decode_sorted(&bytes[..bytes.len() / 2], ids.len());
            assert!(res.is_err(), "codec {} accepted truncated input", codec.name());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_try_decode_never_panics(
            bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..400),
            n in 0usize..400,
        ) {
            for codec in all_codecs() {
                let _ = codec.try_decode_sorted(&bytes, n);
                let _ = codec.try_decode_values(&bytes, n);
            }
        }

        #[test]
        fn prop_all_codecs_roundtrip(ids in proptest::collection::btree_set(0u32..1 << 27, 0..600)) {
            let ids: Vec<u32> = ids.into_iter().collect();
            for codec in all_codecs() {
                let bytes = codec.encode_sorted(&ids);
                prop_assert_eq!(&codec.decode_sorted(&bytes, ids.len()), &ids,
                    "codec {} failed", codec.name());
            }
        }

        #[test]
        fn prop_values_roundtrip(values in proptest::collection::vec(0u32..u32::MAX, 0..600)) {
            for codec in all_codecs() {
                if let Some(bytes) = codec.encode_values(&values) {
                    prop_assert_eq!(&codec.decode_values(&bytes, values.len()), &values,
                        "codec {} failed", codec.name());
                }
            }
        }
    }
}
