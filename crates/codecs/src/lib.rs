//! Baseline inverted-list compression codecs (paper §2.1, §6; compared in
//! Table 2).
//!
//! The IIU paper benchmarks its bit-packing scheme against the classic
//! integer codecs used by search engines. This crate implements the
//! comparison set from scratch:
//!
//! * [`VByte`] — byte-aligned varints (Cutting & Pedersen);
//! * [`Pfor`] — classic PForDelta with patched 32-bit exceptions and a
//!   linked exception chain (Zukowski et al.);
//! * [`NewPfor`] — exception low bits kept in the slot array, positions and
//!   high bits compressed separately (Yan et al.);
//! * [`OptPfor`] — per-block bitwidth chosen by exhaustive size
//!   minimization (Yan et al.);
//! * [`SimdBp128`] — exception-free 128-value bit-packing in the style of
//!   SIMD-BP128 (Lemire & Boytsov), the layout family the paper's
//!   "SIMDPfor" column represents;
//! * [`Simple9`] — selector-coded 32-bit words (Anh & Moffat), the family
//!   NewPfor's side arrays use;
//! * [`EliasFano`] — quasi-succinct encoding of sorted sequences (Vigna);
//! * [`Milc`] — offset-from-block-base encoding in the spirit of MILC
//!   (Wang et al.), without its cache/SIMD layout tricks.
//!
//! All codecs speak [`Codec`]: sorted docID sequences via
//! `encode_sorted`/`decode_sorted`, and (where supported) arbitrary
//! unsorted value sequences (term frequencies) via
//! `encode_values`/`decode_values`. NewPfor/OptPfor compress their side
//! arrays with [`Simple9`] (Simple16 in the original — a sibling with the
//! same selector-coded structure).

pub mod eliasfano;
pub mod milc;
pub mod pfor;
pub mod simdbp;
pub mod simple9;
pub mod vbyte;

pub use eliasfano::EliasFano;
pub use milc::Milc;
pub use pfor::{NewPfor, OptPfor, Pfor};
pub use simdbp::SimdBp128;
pub use simple9::Simple9;
pub use vbyte::VByte;

/// A lossless integer-sequence codec.
///
/// Implementations must round-trip exactly:
/// `decode_sorted(&encode_sorted(x), x.len()) == x` for strictly increasing
/// `x`, and likewise for `encode_values` when supported.
pub trait Codec {
    /// Short human-readable name (Table 2 column header).
    fn name(&self) -> &'static str;

    /// Compresses a strictly increasing docID sequence.
    ///
    /// # Panics
    ///
    /// May panic if the input is not strictly increasing.
    fn encode_sorted(&self, doc_ids: &[u32]) -> Vec<u8>;

    /// Decompresses `n` docIDs produced by [`Codec::encode_sorted`].
    fn decode_sorted(&self, bytes: &[u8], n: usize) -> Vec<u32>;

    /// Compresses an arbitrary (possibly unsorted) value sequence, e.g.
    /// term frequencies. Returns `None` for codecs that only handle sorted
    /// data (Elias-Fano); Table 2 then falls back to VByte for the tf
    /// stream, mirroring the paper's remark that the Pfor family "require a
    /// separate scheme for compressing term frequency".
    fn encode_values(&self, values: &[u32]) -> Option<Vec<u8>>;

    /// Decompresses `n` values produced by [`Codec::encode_values`].
    ///
    /// # Panics
    ///
    /// Implementations may panic if the codec does not support unsorted
    /// values (callers should have received `None` from `encode_values`).
    fn decode_values(&self, bytes: &[u8], n: usize) -> Vec<u32>;
}

/// Every codec in the Table 2 comparison, in the paper's column order.
pub fn all_codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(Pfor),
        Box::new(NewPfor),
        Box::new(OptPfor),
        Box::new(SimdBp128),
        Box::new(VByte),
        Box::new(Simple9),
        Box::new(EliasFano),
        Box::new(Milc::default()),
    ]
}

/// Delta-encodes a strictly increasing sequence (first element kept).
pub(crate) fn deltas(doc_ids: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(doc_ids.len());
    let mut prev = 0u32;
    for (i, &d) in doc_ids.iter().enumerate() {
        if i == 0 {
            out.push(d);
        } else {
            assert!(d > prev, "docIDs must be strictly increasing");
            out.push(d - prev);
        }
        prev = d;
    }
    out
}

/// Inverse of [`deltas`].
pub(crate) fn prefix_sums(gaps: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(gaps.len());
    let mut acc = 0u32;
    for (i, &g) in gaps.iter().enumerate() {
        acc = if i == 0 { g } else { acc + g };
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sorted_sample(seed: u64, n: usize, max_gap: u32) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc = 0u32;
        (0..n)
            .map(|_| {
                acc += rng.gen_range(1..=max_gap);
                acc
            })
            .collect()
    }

    #[test]
    fn all_codecs_roundtrip_sorted() {
        for codec in all_codecs() {
            for (seed, n, max_gap) in [
                (1u64, 0usize, 10u32),
                (2, 1, 5),
                (3, 127, 100),
                (4, 128, 100),
                (5, 1000, 1 << 16),
                (6, 300, 2),
            ] {
                let ids = sorted_sample(seed, n, max_gap);
                let bytes = codec.encode_sorted(&ids);
                let back = codec.decode_sorted(&bytes, ids.len());
                assert_eq!(back, ids, "codec {} failed on seed {seed}", codec.name());
            }
        }
    }

    #[test]
    fn all_codecs_roundtrip_values_when_supported() {
        let mut rng = StdRng::seed_from_u64(42);
        let values: Vec<u32> = (0..500).map(|_| rng.gen_range(0..10_000)).collect();
        for codec in all_codecs() {
            if let Some(bytes) = codec.encode_values(&values) {
                assert_eq!(
                    codec.decode_values(&bytes, values.len()),
                    values,
                    "codec {} failed on unsorted values",
                    codec.name()
                );
            }
        }
    }

    #[test]
    fn codec_names_are_distinct() {
        let names: Vec<&str> = all_codecs().iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn clustered_data_compresses_better_than_uniform() {
        // Sanity check on size accounting: small gaps must compress better
        // than large gaps for every block codec.
        for codec in all_codecs() {
            let tight = sorted_sample(7, 4096, 2);
            let sparse = sorted_sample(8, 4096, 1 << 18);
            let t = codec.encode_sorted(&tight).len();
            let s = codec.encode_sorted(&sparse).len();
            assert!(
                t < s,
                "codec {}: tight {t} bytes should beat sparse {s} bytes",
                codec.name()
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_all_codecs_roundtrip(ids in proptest::collection::btree_set(0u32..1 << 27, 0..600)) {
            let ids: Vec<u32> = ids.into_iter().collect();
            for codec in all_codecs() {
                let bytes = codec.encode_sorted(&ids);
                prop_assert_eq!(&codec.decode_sorted(&bytes, ids.len()), &ids,
                    "codec {} failed", codec.name());
            }
        }

        #[test]
        fn prop_values_roundtrip(values in proptest::collection::vec(0u32..u32::MAX, 0..600)) {
            for codec in all_codecs() {
                if let Some(bytes) = codec.encode_values(&values) {
                    prop_assert_eq!(&codec.decode_values(&bytes, values.len()), &values,
                        "codec {} failed", codec.name());
                }
            }
        }
    }
}
