//! Stream-VByte: byte-aligned varints with the control bits split out of
//! the data stream (Lemire, Kurz & Rupp 2018). Each value takes 1–4 data
//! bytes; a separate control stream holds one 2-bit length code per value
//! (four values per control byte). Splitting the streams removes the
//! bit-by-bit continuation test of classic VByte: a decoder reads a whole
//! control byte and then copies the four payloads branch-free, which is
//! what makes the format SIMD-friendly (a 16-entry shuffle table keyed by
//! the control byte). This scalar implementation keeps the exact on-wire
//! layout: `[ceil(n/4) control bytes][data bytes]`.

use crate::{deltas, take, try_prefix_sums, Codec, CodecError};

const NAME: &str = "Stream-VByte";

/// The Stream-VByte codec. Sorted sequences are delta-encoded first.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamVByte;

impl StreamVByte {
    /// Byte length of `v` on the data stream (1..=4) minus one — the
    /// 2-bit control code.
    fn code(v: u32) -> u8 {
        match v {
            0..=0xff => 0,
            0x100..=0xffff => 1,
            0x1_0000..=0xff_ffff => 2,
            _ => 3,
        }
    }

    fn encode_seq(values: &[u32]) -> Vec<u8> {
        let control_len = values.len().div_ceil(4);
        let mut out = vec![0u8; control_len];
        for (i, &v) in values.iter().enumerate() {
            let code = Self::code(v);
            out[i / 4] |= code << ((i % 4) * 2);
            out.extend_from_slice(&v.to_le_bytes()[..usize::from(code) + 1]);
        }
        out
    }

    fn try_decode_seq(bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        let control_len = n.div_ceil(4);
        let mut pos = 0usize;
        let control = take(bytes, &mut pos, control_len, NAME, "control stream")?;
        // Each value occupies at least one data byte, so cap the
        // allocation by what the input could possibly hold.
        let mut out = Vec::with_capacity(n.min(bytes.len()));
        for i in 0..n {
            let code = (control[i / 4] >> ((i % 4) * 2)) & 0b11;
            let len = usize::from(code) + 1;
            let data = take(bytes, &mut pos, len, NAME, "data stream")?;
            let mut word = [0u8; 4];
            word[..len].copy_from_slice(data);
            out.push(u32::from_le_bytes(word));
        }
        Ok(out)
    }
}

impl Codec for StreamVByte {
    fn name(&self) -> &'static str {
        NAME
    }

    fn encode_sorted(&self, doc_ids: &[u32]) -> Vec<u8> {
        Self::encode_seq(&deltas(doc_ids))
    }

    fn encode_values(&self, values: &[u32]) -> Option<Vec<u8>> {
        Some(Self::encode_seq(values))
    }

    fn try_decode_sorted(&self, bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        try_prefix_sums(&Self::try_decode_seq(bytes, n)?, NAME)
    }

    fn try_decode_values(&self, bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        Self::try_decode_seq(bytes, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn control_codes_match_byte_lengths() {
        for (v, want) in [
            (0u32, 0u8),
            (1, 0),
            (255, 0),
            (256, 1),
            (65_535, 1),
            (65_536, 2),
            (16_777_215, 2),
            (16_777_216, 3),
            (u32::MAX, 3),
        ] {
            assert_eq!(StreamVByte::code(v), want, "code({v})");
        }
    }

    #[test]
    fn layout_is_control_then_data() {
        // Four 1-byte values: one zero control byte then the payloads.
        let bytes = StreamVByte::encode_seq(&[1, 2, 3, 4]);
        assert_eq!(bytes, vec![0b00_00_00_00, 1, 2, 3, 4]);
        // A 2-byte value in slot 1 flips that slot's control code.
        let bytes = StreamVByte::encode_seq(&[1, 300]);
        assert_eq!(bytes, vec![0b0000_0100, 1, 44, 1]);
    }

    #[test]
    fn partial_last_control_byte() {
        // n = 5 needs two control bytes, the second only 2 bits used.
        let values = [7u32, 70_000, 3, u32::MAX, 9];
        let bytes = StreamVByte::encode_seq(&values);
        assert_eq!(StreamVByte::try_decode_seq(&bytes, 5).unwrap(), values);
    }

    #[test]
    fn truncation_is_a_typed_error_at_both_streams() {
        let bytes = StreamVByte.encode_sorted(&[10, 20, 30, 40, 50]);
        assert!(matches!(
            StreamVByte.try_decode_sorted(&bytes[..1], 5),
            Err(CodecError::Truncated { what: "control stream", .. })
        ));
        assert!(matches!(
            StreamVByte.try_decode_sorted(&bytes[..bytes.len() - 1], 5),
            Err(CodecError::Truncated { what: "data stream", .. })
        ));
    }

    #[test]
    fn dense_gaps_take_one_byte_each() {
        let ids: Vec<u32> = (1_000_000..1_000_100).collect();
        let bytes = StreamVByte.encode_sorted(&ids);
        // 25 control bytes + 3 bytes for the first id + 99 one-byte gaps.
        assert_eq!(bytes.len(), 25 + 3 + 99);
        assert_eq!(StreamVByte.decode_sorted(&bytes, ids.len()), ids);
    }

    proptest! {
        #[test]
        fn prop_values_roundtrip(values in proptest::collection::vec(0u32..=u32::MAX, 0..300)) {
            let bytes = StreamVByte::encode_seq(&values);
            prop_assert_eq!(StreamVByte::try_decode_seq(&bytes, values.len()).unwrap(), values);
        }

        #[test]
        fn prop_agrees_with_vbyte_on_sorted(ids in proptest::collection::btree_set(0u32..1 << 27, 0..300)) {
            let ids: Vec<u32> = ids.into_iter().collect();
            let bytes = StreamVByte.encode_sorted(&ids);
            prop_assert_eq!(StreamVByte.decode_sorted(&bytes, ids.len()), ids);
        }
    }
}
