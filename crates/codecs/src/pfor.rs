//! The PForDelta family (paper §2.1).
//!
//! * [`Pfor`] — classic patched frame-of-reference (Zukowski et al. 2006):
//!   a per-block bitwidth `b` covering ~90% of values, exceptions stored as
//!   raw 32-bit values at the block end and chained through the slot array.
//! * [`NewPfor`] — NewPForDelta (Yan et al. 2009): every slot stores the
//!   value's low `b` bits; exception positions and high bits live in two
//!   Simple9-coded side arrays (Simple16 in the original).
//! * [`OptPfor`] — OptPForDelta (Yan et al. 2009): NewPfor layout, but `b`
//!   is chosen per block by exhaustively minimizing the encoded size.

use iiu_index::bitpack::{bits_for, BitReader, BitWriter};

use crate::simple9::Simple9;
use crate::vbyte::VByte;
use crate::{deltas, try_prefix_sums, Codec, CodecError};

/// Re-tags an error from an embedded codec (VByte counts, Simple9 side
/// arrays) with the outer codec's name.
fn retag(e: CodecError, codec: &'static str) -> CodecError {
    match e {
        CodecError::Truncated { what, .. } => CodecError::Truncated { codec, what },
        CodecError::Malformed { what, .. } => CodecError::Malformed { codec, what },
        other => other,
    }
}

/// Block length used by the whole family (the paper: "data blocks of 128
/// d-gaps").
pub const PFOR_BLOCK_LEN: usize = 128;

/// Fraction of values the chosen bitwidth must cover in the 90%-rule
/// variants.
const REGULAR_FRACTION: f64 = 0.9;

/// Smallest `b >= 1` such that at least 90% of `values` fit in `b` bits.
fn ninety_percent_width(values: &[u32]) -> u8 {
    if values.is_empty() {
        return 1;
    }
    let need = (values.len() as f64 * REGULAR_FRACTION).ceil() as usize;
    let mut hist = [0usize; 33];
    for &v in values {
        hist[bits_for(v) as usize] += 1;
    }
    let mut covered = 0usize;
    for (b, &count) in hist.iter().enumerate() {
        covered += count;
        if covered >= need {
            return (b.max(1)) as u8;
        }
    }
    32
}

// ---------------------------------------------------------------------------
// Classic PFor
// ---------------------------------------------------------------------------

/// Classic PForDelta with a linked exception chain and 32-bit patch values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Pfor;

impl Pfor {
    /// Encodes one block of at most [`PFOR_BLOCK_LEN`] values.
    ///
    /// Layout: `[b: u8][first_exc: u8 (0xff = none)][exc_count: u8]`,
    /// then `n` `b`-bit slots, then `exc_count` raw little-endian u32
    /// exception values in position order. Exception slots hold the
    /// distance minus one to the next exception; forced exceptions are
    /// inserted whenever that distance would overflow `b` bits.
    fn encode_block(out: &mut Vec<u8>, values: &[u32]) {
        let n = values.len();
        debug_assert!(n <= PFOR_BLOCK_LEN && n > 0);
        let b = ninety_percent_width(values);
        let max_jump = if b >= 31 { u32::MAX } else { (1u32 << b) - 1 }; // distance-1 per slot

        // Natural exceptions: values too wide for b bits.
        let mut exc_pos: Vec<usize> = (0..n).filter(|&i| bits_for(values[i]) > b).collect();
        // Forced exceptions: keep chain jumps representable in b bits.
        if b < 31 {
            let mut patched = Vec::with_capacity(exc_pos.len());
            let mut prev: Option<usize> = None;
            let mut iter = exc_pos.iter().copied().peekable();
            while let Some(&next) = iter.peek() {
                match prev {
                    Some(p) if next - p - 1 > max_jump as usize => {
                        let forced = p + 1 + max_jump as usize;
                        patched.push(forced);
                        prev = Some(forced);
                        // do not consume `next`; re-check against the forced one
                    }
                    _ => {
                        patched.push(next);
                        prev = Some(next);
                        iter.next();
                    }
                }
            }
            patched.dedup();
            exc_pos = patched;
        }
        assert!(exc_pos.len() <= n);

        out.push(b);
        out.push(exc_pos.first().map_or(0xff, |&p| p as u8));
        out.push(exc_pos.len() as u8);

        let exc_set: Vec<bool> = {
            let mut v = vec![false; n];
            for &p in &exc_pos {
                v[p] = true;
            }
            v
        };
        let mut next_exc = vec![0u32; exc_pos.len()];
        for w in 0..exc_pos.len().saturating_sub(1) {
            next_exc[w] = (exc_pos[w + 1] - exc_pos[w] - 1) as u32;
        }

        let mut writer = BitWriter::new();
        let mut exc_idx = 0usize;
        for (i, &v) in values.iter().enumerate() {
            if exc_set[i] {
                writer.write(next_exc[exc_idx] & low_mask(b), b);
                exc_idx += 1;
            } else {
                writer.write(v, b);
            }
        }
        out.extend_from_slice(&writer.finish());
        for &p in &exc_pos {
            out.extend_from_slice(&values[p].to_le_bytes());
        }
    }

    /// Checked block decoder: the header, slot array, exception values and
    /// the patch chain walk are all validated before use.
    fn try_decode_block(
        bytes: &[u8],
        pos: &mut usize,
        n: usize,
    ) -> Result<Vec<u32>, CodecError> {
        const NAME: &str = "Pfor";
        let header = crate::take(bytes, pos, 3, NAME, "block header")?;
        let b = header[0];
        let first_exc = header[1];
        let exc_count = header[2] as usize;
        if b > 32 {
            return Err(CodecError::Malformed {
                codec: NAME,
                what: "slot bitwidth exceeds 32",
            });
        }
        if (first_exc == 0xff) != (exc_count == 0) {
            return Err(CodecError::Malformed {
                codec: NAME,
                what: "inconsistent exception chain header",
            });
        }
        if exc_count > n {
            return Err(CodecError::Malformed {
                codec: NAME,
                what: "more exceptions than values",
            });
        }
        let slot_bytes = n.checked_mul(b as usize).map(|bits| bits.div_ceil(8)).ok_or(
            CodecError::Malformed { codec: NAME, what: "slot array length overflows" },
        )?;
        let slots = crate::take(bytes, pos, slot_bytes, NAME, "slot array")?;
        let mut reader = BitReader::new(slots);
        let mut values: Vec<u32> = (0..n).map(|_| reader.read(b)).collect();

        let mut exc_values = Vec::with_capacity(exc_count);
        for _ in 0..exc_count {
            exc_values.push(crate::take_u32(bytes, pos, NAME, "exception value")?);
        }

        if first_exc != 0xff {
            let mut p = first_exc as usize;
            for (k, &ev) in exc_values.iter().enumerate() {
                let jump = *values.get(p).ok_or(CodecError::Malformed {
                    codec: NAME,
                    what: "exception position out of range",
                })?;
                values[p] = ev;
                if k + 1 < exc_values.len() {
                    p = p.checked_add(1 + jump as usize).ok_or(CodecError::Malformed {
                        codec: NAME,
                        what: "exception chain jump overflows",
                    })?;
                }
            }
        }
        Ok(values)
    }

    fn encode_seq(values: &[u32]) -> Vec<u8> {
        let mut out = Vec::new();
        for chunk in values.chunks(PFOR_BLOCK_LEN) {
            Self::encode_block(&mut out, chunk);
        }
        out
    }

    fn try_decode_seq(bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        let mut out = Vec::with_capacity(n);
        let mut pos = 0usize;
        let mut left = n;
        while left > 0 {
            let take = left.min(PFOR_BLOCK_LEN);
            out.extend(Self::try_decode_block(bytes, &mut pos, take)?);
            left -= take;
        }
        Ok(out)
    }
}

fn low_mask(b: u8) -> u32 {
    if b >= 32 {
        u32::MAX
    } else {
        (1u32 << b) - 1
    }
}

impl Codec for Pfor {
    fn name(&self) -> &'static str {
        "Pfor"
    }

    fn encode_sorted(&self, doc_ids: &[u32]) -> Vec<u8> {
        Self::encode_seq(&deltas(doc_ids))
    }

    fn encode_values(&self, values: &[u32]) -> Option<Vec<u8>> {
        Some(Self::encode_seq(values))
    }

    fn try_decode_sorted(&self, bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        try_prefix_sums(&Self::try_decode_seq(bytes, n)?, "Pfor")
    }

    fn try_decode_values(&self, bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        Self::try_decode_seq(bytes, n)
    }
}

// ---------------------------------------------------------------------------
// NewPfor / OptPfor (shared layout, different width selection)
// ---------------------------------------------------------------------------

/// Builds the two exception side arrays: delta-coded positions and high
/// bits.
fn exception_arrays(values: &[u32], b: u8) -> (Vec<u32>, Vec<u32>) {
    let exc: Vec<usize> = (0..values.len()).filter(|&i| bits_for(values[i]) > b).collect();
    let mut gaps = Vec::with_capacity(exc.len());
    let mut prev = 0usize;
    for (k, &p) in exc.iter().enumerate() {
        gaps.push(if k == 0 { p as u32 } else { (p - prev) as u32 });
        prev = p;
    }
    let highs = exc.iter().map(|&p| values[p] >> b).collect();
    (gaps, highs)
}

/// Encodes one NewPfor-layout block at width `b`:
/// `[b: u8]`, `n` slots of the values' low `b` bits, then a VByte
/// exception count, Simple9-coded delta positions, and high bits
/// (Simple9 when they fit in 28 bits — flagged — else VByte).
fn newpfor_encode_block(out: &mut Vec<u8>, values: &[u32], b: u8) {
    out.push(b);
    let mut writer = BitWriter::new();
    for &v in values {
        writer.write(v & low_mask(b), b);
    }
    out.extend_from_slice(&writer.finish());

    let (gaps, highs) = exception_arrays(values, b);
    VByte::put(out, gaps.len() as u32);
    if !gaps.is_empty() {
        out.extend_from_slice(&Simple9::encode_words(&gaps));
        if Simple9::fits(&highs) {
            out.push(1);
            out.extend_from_slice(&Simple9::encode_words(&highs));
        } else {
            out.push(0);
            for &h in &highs {
                VByte::put(out, h);
            }
        }
    }
}

/// Checked NewPfor-layout block decoder shared by [`NewPfor`] and
/// [`OptPfor`]; `codec` names the caller in errors.
fn try_newpfor_decode_block(
    bytes: &[u8],
    pos: &mut usize,
    n: usize,
    codec: &'static str,
) -> Result<Vec<u32>, CodecError> {
    let b = crate::take_u8(bytes, pos, codec, "slot bitwidth")?;
    if b > 32 {
        return Err(CodecError::Malformed { codec, what: "slot bitwidth exceeds 32" });
    }
    let slot_bytes = n
        .checked_mul(b as usize)
        .map(|bits| bits.div_ceil(8))
        .ok_or(CodecError::Malformed { codec, what: "slot array length overflows" })?;
    let slots = crate::take(bytes, pos, slot_bytes, codec, "slot array")?;
    let mut reader = BitReader::new(slots);
    let mut values: Vec<u32> = (0..n).map(|_| reader.read(b)).collect();

    let exc_count = VByte::try_get(bytes, pos).map_err(|e| retag(e, codec))? as usize;
    if exc_count == 0 {
        return Ok(values);
    }
    if exc_count > n {
        return Err(CodecError::Malformed { codec, what: "more exceptions than values" });
    }
    let gaps =
        Simple9::try_decode_words_at(bytes, pos, exc_count).map_err(|e| retag(e, codec))?;
    let mut positions = Vec::with_capacity(exc_count);
    let mut p = 0usize;
    for (k, &gap) in gaps.iter().enumerate() {
        p = if k == 0 {
            gap as usize
        } else {
            p.checked_add(gap as usize)
                .ok_or(CodecError::Malformed { codec, what: "exception position overflows" })?
        };
        if p >= n {
            return Err(CodecError::Malformed {
                codec,
                what: "exception position out of range",
            });
        }
        positions.push(p);
    }
    let flag = crate::take_u8(bytes, pos, codec, "high-bits flag")?;
    let highs = match flag {
        1 => {
            Simple9::try_decode_words_at(bytes, pos, exc_count).map_err(|e| retag(e, codec))?
        }
        0 => {
            let mut highs = Vec::with_capacity(exc_count);
            for _ in 0..exc_count {
                highs.push(VByte::try_get(bytes, pos).map_err(|e| retag(e, codec))?);
            }
            highs
        }
        _ => return Err(CodecError::Malformed { codec, what: "invalid high-bits flag" }),
    };
    for (&p, &high) in positions.iter().zip(&highs) {
        let patched = (u64::from(high) << b) | u64::from(values[p]);
        values[p] = u32::try_from(patched).map_err(|_| CodecError::Malformed {
            codec,
            what: "patched value overflows u32",
        })?;
    }
    Ok(values)
}

/// Encoded size in bytes of one block at width `b` (for OptPfor's search).
fn newpfor_block_size(values: &[u32], b: u8) -> usize {
    let mut size = 1 + (values.len() * b as usize).div_ceil(8);
    let (gaps, highs) = exception_arrays(values, b);
    size += vbyte_len(gaps.len() as u32);
    if !gaps.is_empty() {
        size += Simple9::encode_words(&gaps).len() + 1;
        size += if Simple9::fits(&highs) {
            Simple9::encode_words(&highs).len()
        } else {
            highs.iter().map(|&h| vbyte_len(h)).sum::<usize>()
        };
    }
    size
}

fn vbyte_len(v: u32) -> usize {
    match v {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0xfff_ffff => 4,
        _ => 5,
    }
}

macro_rules! newpfor_codec {
    ($ty:ident, $name:literal, $pick:expr) => {
        impl $ty {
            fn encode_seq(values: &[u32]) -> Vec<u8> {
                let mut out = Vec::new();
                for chunk in values.chunks(PFOR_BLOCK_LEN) {
                    #[allow(clippy::redundant_closure_call)]
                    let b: u8 = ($pick)(chunk);
                    newpfor_encode_block(&mut out, chunk, b);
                }
                out
            }

            fn try_decode_seq(bytes: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
                let mut out = Vec::with_capacity(n);
                let mut pos = 0usize;
                let mut left = n;
                while left > 0 {
                    let take = left.min(PFOR_BLOCK_LEN);
                    out.extend(try_newpfor_decode_block(bytes, &mut pos, take, $name)?);
                    left -= take;
                }
                Ok(out)
            }
        }

        impl Codec for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn encode_sorted(&self, doc_ids: &[u32]) -> Vec<u8> {
                Self::encode_seq(&deltas(doc_ids))
            }

            fn encode_values(&self, values: &[u32]) -> Option<Vec<u8>> {
                Some(Self::encode_seq(values))
            }

            fn try_decode_sorted(
                &self,
                bytes: &[u8],
                n: usize,
            ) -> Result<Vec<u32>, CodecError> {
                try_prefix_sums(&Self::try_decode_seq(bytes, n)?, $name)
            }

            fn try_decode_values(
                &self,
                bytes: &[u8],
                n: usize,
            ) -> Result<Vec<u32>, CodecError> {
                Self::try_decode_seq(bytes, n)
            }
        }
    };
}

/// NewPForDelta: 90%-rule width, exception positions/high-bits in side
/// arrays.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NewPfor;

newpfor_codec!(NewPfor, "NewPfor", |chunk: &[u32]| ninety_percent_width(chunk));

/// OptPForDelta: NewPfor layout with the per-block width chosen by
/// exhaustive size minimization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptPfor;

newpfor_codec!(OptPfor, "OptPfor", |chunk: &[u32]| {
    let hi = chunk.iter().copied().map(bits_for).max().unwrap_or(1).max(1);
    (1..=hi).min_by_key(|&b| newpfor_block_size(chunk, b)).unwrap_or(1)
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix_sums;
    use proptest::prelude::*;

    #[test]
    fn ninety_percent_width_ignores_outliers() {
        // 120 small values and 8 huge ones: b should track the small ones.
        let mut values = vec![3u32; 120];
        values.extend(vec![1 << 30; 8]);
        assert_eq!(ninety_percent_width(&values), 2);
    }

    #[test]
    fn ninety_percent_width_of_uniform_values() {
        assert_eq!(ninety_percent_width(&[7; 128]), 3);
        assert_eq!(ninety_percent_width(&[0; 128]), 1);
        assert_eq!(ninety_percent_width(&[]), 1);
    }

    #[test]
    fn pfor_block_with_exceptions_roundtrips() {
        let mut values = vec![1u32; 100];
        values[5] = 1 << 25;
        values[50] = 1 << 30;
        values[99] = u32::MAX;
        let mut out = Vec::new();
        Pfor::encode_block(&mut out, &values);
        let mut pos = 0;
        assert_eq!(Pfor::try_decode_block(&out, &mut pos, 100).unwrap(), values);
        assert_eq!(pos, out.len());
    }

    #[test]
    fn pfor_forced_exceptions_on_distant_patches() {
        // b = 1 with exceptions 120 apart forces intermediate patches.
        let mut values = vec![0u32; 128];
        values[0] = 1 << 20;
        values[127] = 1 << 20;
        let mut out = Vec::new();
        Pfor::encode_block(&mut out, &values);
        let mut pos = 0;
        assert_eq!(Pfor::try_decode_block(&out, &mut pos, 128).unwrap(), values);
    }

    #[test]
    fn pfor_all_values_wide() {
        let values = vec![u32::MAX; 64];
        let mut out = Vec::new();
        Pfor::encode_block(&mut out, &values);
        let mut pos = 0;
        assert_eq!(Pfor::try_decode_block(&out, &mut pos, 64).unwrap(), values);
    }

    #[test]
    fn newpfor_block_roundtrip_with_exceptions() {
        let mut values = vec![5u32; 128];
        values[0] = 1 << 29;
        values[64] = 12345678;
        let mut out = Vec::new();
        newpfor_encode_block(&mut out, &values, 3);
        let mut pos = 0;
        assert_eq!(try_newpfor_decode_block(&out, &mut pos, 128, "NewPfor").unwrap(), values);
        assert_eq!(pos, out.len());
    }

    #[test]
    fn try_decode_block_rejects_corrupt_chains() {
        // A header that claims exceptions but marks the chain empty.
        let bytes = [3u8, 0xff, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let mut pos = 0;
        assert!(matches!(
            Pfor::try_decode_block(&bytes, &mut pos, 4),
            Err(CodecError::Malformed { .. })
        ));
        // A first-exception position past the block end.
        let mut values = vec![1u32; 9];
        values.push(1 << 20); // one real exception at position 9
        let mut out = Vec::new();
        Pfor::encode_block(&mut out, &values);
        assert_eq!(out[1], 9);
        out[1] = 200; // first_exc points outside n = 10
        let mut pos = 0;
        assert!(matches!(
            Pfor::try_decode_block(&out, &mut pos, 10),
            Err(CodecError::Malformed { .. })
        ));
    }

    #[test]
    fn newpfor_try_decode_rejects_bad_flag() {
        let mut out = Vec::new();
        newpfor_encode_block(&mut out, &[1u32, 1 << 20, 1], 2);
        // Locate the flag byte: header(1) + slots(1) + vbyte count(1),
        // then Simple9 gaps (4), then the flag.
        let flag_at = 1 + 1 + 1 + 4;
        assert!(out[flag_at] == 0 || out[flag_at] == 1);
        out[flag_at] = 7;
        let mut pos = 0;
        assert!(matches!(
            try_newpfor_decode_block(&out, &mut pos, 3, "NewPfor"),
            Err(CodecError::Malformed { .. })
        ));
    }

    #[test]
    fn newpfor_block_size_is_exact() {
        let mut values = vec![5u32; 128];
        values[3] = 99999;
        for b in [1u8, 3, 8, 17] {
            let mut out = Vec::new();
            newpfor_encode_block(&mut out, &values, b);
            assert_eq!(out.len(), newpfor_block_size(&values, b), "b={b}");
        }
    }

    #[test]
    fn optpfor_never_larger_than_newpfor() {
        let mut values: Vec<u32> = (0..1024).map(|i| (i * 37) % 50).collect();
        values[100] = 1 << 28;
        values[900] = 1 << 22;
        let ids = prefix_sums(&values.iter().map(|&v| v + 1).collect::<Vec<_>>());
        let new = NewPfor.encode_sorted(&ids).len();
        let opt = OptPfor.encode_sorted(&ids).len();
        assert!(opt <= new, "OptPfor {opt} must be <= NewPfor {new}");
    }

    #[test]
    fn vbyte_len_matches_encoding() {
        for v in [0u32, 127, 128, 16383, 16384, 1 << 21, u32::MAX] {
            let mut out = Vec::new();
            VByte::put(&mut out, v);
            assert_eq!(out.len(), vbyte_len(v), "v={v}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_pfor_values_roundtrip(values in proptest::collection::vec(0u32..u32::MAX, 1..400)) {
            let bytes = Pfor.encode_values(&values).unwrap();
            prop_assert_eq!(Pfor.decode_values(&bytes, values.len()), values);
        }

        #[test]
        fn prop_newpfor_values_roundtrip(values in proptest::collection::vec(0u32..u32::MAX, 1..400)) {
            let bytes = NewPfor.encode_values(&values).unwrap();
            prop_assert_eq!(NewPfor.decode_values(&bytes, values.len()), values);
        }

        #[test]
        fn prop_optpfor_values_roundtrip(values in proptest::collection::vec(0u32..u32::MAX, 1..400)) {
            let bytes = OptPfor.encode_values(&values).unwrap();
            prop_assert_eq!(OptPfor.decode_values(&bytes, values.len()), values);
        }

        #[test]
        fn prop_pfor_skewed_values(values in proptest::collection::vec(
            prop_oneof![9 => 0u32..16, 1 => 0u32..u32::MAX], 1..400)) {
            // The skew matches PFor's design point: mostly-regular values
            // with occasional wide exceptions.
            let bytes = Pfor.encode_values(&values).unwrap();
            prop_assert_eq!(Pfor.decode_values(&bytes, values.len()), values);
        }
    }
}
