//! Torn-write recovery campaign for the crash-safe incremental index
//! (DESIGN.md §16).
//!
//! Each trial ingests a random prefix of a transposed corpus through a
//! randomized batch/seal/compact schedule, simulates a crash by dropping
//! the handle and damaging the on-disk state (torn WAL tails, garbage
//! appends, stale temp files, a deleted WAL, a stale WAL left behind by a
//! crash between segment rename and WAL reset), reopens, and asserts:
//!
//! * recovery never panics and never hangs,
//! * the recovered document count is a prefix — at least everything
//!   sealed, at most everything acknowledged,
//! * the recovered index is **bit-identical** (full `InvertedIndex`
//!   equality, plus hit-for-hit search agreement on single-term, AND and
//!   OR queries) to a one-shot build over exactly that prefix,
//! * re-ingesting the lost suffix converges back to the full corpus.
//!
//! Unrecoverable damage — CRC-corrupt *interior* WAL records, corrupt or
//! truncated sealed segments — must surface as typed [`IndexError`]s,
//! never as panics or silently wrong indexes.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use std::sync::Arc;

use iiu_core::{CpuSearchEngine, Query, SearchEngine};
use iiu_index::{
    IncrementalIndex, IncrementalOptions, IndexError, IngestDoc, InvertedIndex, PostingList,
};
use iiu_serve::{LiveIndex, QueryService, ServeConfig};
use iiu_workloads::CorpusConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WAL: &str = "wal.log";

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("iiu-chaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Small transposed corpus shared by every trial.
fn chaos_docs() -> Vec<IngestDoc> {
    CorpusConfig { n_docs: 300, n_terms: 80, ..CorpusConfig::tiny(0xC4A05) }
        .generate()
        .to_docs()
}

/// One-shot reference over `docs`, built without touching any of the
/// incremental machinery: transpose back into posting lists and feed
/// [`InvertedIndex::from_lists`] directly.
fn reference_index(docs: &[IngestDoc], opts: &IncrementalOptions) -> InvertedIndex {
    let mut lists: BTreeMap<String, PostingList> = BTreeMap::new();
    let mut doc_lens = Vec::with_capacity(docs.len());
    for (id, d) in docs.iter().enumerate() {
        doc_lens.push(d.len());
        for (term, tf) in d.terms() {
            lists.entry(term.clone()).or_default().push(id as u32, *tf);
        }
    }
    InvertedIndex::from_lists(
        lists.into_iter().collect(),
        doc_lens,
        opts.partitioner,
        opts.bm25,
    )
    .expect("reference build")
}

/// Asserts hit-for-hit agreement between `got` and `want` on the three
/// gated query shapes: single term, two-term AND, two-term OR.
fn assert_search_identical(rng: &mut StdRng, got: &InvertedIndex, want: &InvertedIndex) {
    if want.num_terms() < 2 {
        return;
    }
    let a = &want.term_info(rng.gen_range(0..want.num_terms() as u32)).term;
    let b = &want.term_info(rng.gen_range(0..want.num_terms() as u32)).term;
    for text in [a.clone(), format!("{a} AND {b}"), format!("{a} OR {b}")] {
        let q = Query::parse(&text).expect("generated query parses");
        let rg = CpuSearchEngine::new(got).search(&q, 10).expect("search recovered");
        let rw = CpuSearchEngine::new(want).search(&q, 10).expect("search reference");
        assert_eq!(rg.hits, rw.hits, "hits diverge on {text:?}");
        assert_eq!(rg.candidates, rw.candidates, "candidates diverge on {text:?}");
    }
}

/// Randomized ingest schedule: batches of 1..=24 docs, occasional manual
/// seals and compactions. Returns the sealed count at "crash" time.
fn run_schedule(
    idx: &mut IncrementalIndex,
    docs: &[IngestDoc],
    upto: usize,
    rng: &mut StdRng,
) {
    let mut i = idx.num_docs() as usize;
    while i < upto {
        let b = rng.gen_range(1..=24usize).min(upto - i);
        idx.ingest_batch(&docs[i..i + b]).expect("acknowledged ingest");
        i += b;
        if idx.options().seal_threshold == 0 && rng.gen_bool(0.2) {
            idx.seal().expect("manual seal");
        }
        if rng.gen_bool(0.05) {
            idx.compact().expect("compact");
        }
    }
}

#[test]
fn recovery_campaign_survives_randomized_torn_writes() {
    // ≥1k randomized trials in release (verify.sh runs this test in
    // release mode); a slimmer but same-shaped pass under `cargo test`.
    const TRIALS: u64 = if cfg!(debug_assertions) { 150 } else { 1_200 };
    let all = chaos_docs();
    let dir = tmp_dir("campaign");

    for trial in 0..TRIALS {
        let mut rng = StdRng::seed_from_u64(0x0C4A_0500 + trial);
        std::fs::remove_dir_all(&dir).ok();
        let opts = IncrementalOptions {
            seal_threshold: [0usize, 16, 32, 64][rng.gen_range(0..4usize)],
            merge_threshold: [0usize, 2, 4][rng.gen_range(0..3usize)],
            ..IncrementalOptions::default()
        };
        let n_ingest = rng.gen_range(10..all.len());
        let mut idx = IncrementalIndex::open(&dir, opts).expect("fresh open");
        run_schedule(&mut idx, &all, n_ingest, &mut rng);

        // Pick the crash mode, then "crash": drop the handle and damage
        // the directory the way a torn write would.
        let fault = rng.gen_range(0..6u32);
        let stale_wal = (fault == 5).then(|| {
            // Crash between segment rename and WAL reset: the segment is
            // durable but the old WAL (now pure duplicates) is still on
            // disk. Capture it, seal, then put it back.
            let bytes = std::fs::read(dir.join(WAL)).expect("read wal");
            idx.seal().expect("seal before stale-wal crash");
            bytes
        });
        let sealed_at_crash = idx.sealed_docs();
        drop(idx);
        let wal_path = dir.join(WAL);
        match fault {
            0 => {} // clean shutdown (control)
            1 => {
                // Torn tail: the final append hit the disk partially.
                let len = std::fs::metadata(&wal_path).expect("wal meta").len();
                let cut = len.saturating_sub(rng.gen_range(1..=40u64));
                let f =
                    std::fs::OpenOptions::new().write(true).open(&wal_path).expect("open wal");
                f.set_len(cut).expect("truncate wal");
            }
            2 => {
                // Torn append: garbage bytes past the last full record.
                let mut bytes = std::fs::read(&wal_path).expect("read wal");
                for _ in 0..rng.gen_range(1..=24usize) {
                    bytes.push(rng.gen_range(0..=u8::MAX));
                }
                std::fs::write(&wal_path, bytes).expect("write garbage tail");
            }
            3 => {
                // In-flight seal: a temp segment that never got renamed.
                std::fs::write(
                    dir.join("seg-000000000099-000000000001.iiu.tmp"),
                    b"half-written segment",
                )
                .expect("write stale tmp");
            }
            4 => {
                // WAL lost wholesale; only sealed segments survive.
                std::fs::remove_file(&wal_path).expect("remove wal");
            }
            5 => {
                std::fs::write(&wal_path, stale_wal.as_deref().unwrap_or_default())
                    .expect("restore stale wal");
            }
            _ => unreachable!(),
        }

        // Reopen. Recovery must neither panic nor error on these modes.
        let recovered = catch_unwind(AssertUnwindSafe(|| IncrementalIndex::open(&dir, opts)))
            .unwrap_or_else(|_| panic!("recovery panicked (trial {trial}, fault {fault})"))
            .unwrap_or_else(|e| panic!("recovery failed (trial {trial}, fault {fault}): {e}"));
        let n_rec = recovered.num_docs() as usize;
        assert!(
            n_rec as u64 >= sealed_at_crash,
            "sealed docs lost: {n_rec} < {sealed_at_crash} (trial {trial}, fault {fault})"
        );
        assert!(n_rec <= n_ingest, "phantom docs after recovery (trial {trial})");
        match fault {
            0 | 2 | 3 | 5 => assert_eq!(n_rec, n_ingest, "trial {trial} fault {fault}"),
            4 => assert_eq!(n_rec as u64, sealed_at_crash, "trial {trial}"),
            _ => {}
        }
        if fault == 5 && stale_wal.as_deref().map_or(0, <[u8]>::len) > 8 {
            // The stale WAL held at least one full record and everything
            // in it is sealed, so replay must skip it as a duplicate.
            assert!(
                recovered.recovery_report().wal_duplicates_skipped > 0,
                "stale WAL records must be skipped as duplicates (trial {trial})"
            );
        }

        // The surviving prefix must be bit-identical to a one-shot build.
        let reference = reference_index(&all[..n_rec], &opts);
        let got = recovered.to_one_shot().expect("materialize recovered");
        assert_eq!(got, reference, "recovered index diverges (trial {trial}, fault {fault})");
        assert_search_identical(&mut rng, &got, &reference);

        // Losing unacknowledged docs is recoverable in the larger system:
        // re-ingesting the suffix converges to the full corpus.
        let mut recovered = recovered;
        run_schedule(&mut recovered, &all, n_ingest, &mut rng);
        let full = recovered.to_one_shot().expect("materialize converged");
        assert_eq!(
            full,
            reference_index(&all[..n_ingest], &opts),
            "re-ingest did not converge (trial {trial}, fault {fault})"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interior_wal_corruption_is_a_typed_error_not_a_panic() {
    let all = chaos_docs();
    let dir = tmp_dir("interior");
    let opts = IncrementalOptions { seal_threshold: 0, ..IncrementalOptions::default() };
    let mut idx = IncrementalIndex::open(&dir, opts).expect("fresh open");
    // Three unsealed records so byte 12 (the first record's CRC field)
    // is strictly interior.
    idx.ingest_batch(&all[..3]).expect("ingest");
    drop(idx);
    let wal_path = dir.join(WAL);
    let mut bytes = std::fs::read(&wal_path).expect("read wal");
    bytes[12] ^= 0x40;
    std::fs::write(&wal_path, &bytes).expect("write corrupt wal");

    let result = catch_unwind(AssertUnwindSafe(|| IncrementalIndex::open(&dir, opts)))
        .expect("interior corruption must not panic");
    match result {
        Err(IndexError::CorruptWal { offset, .. }) => {
            assert_eq!(offset, 8, "first record starts right after the header");
        }
        other => panic!("expected CorruptWal, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn damaged_sealed_segments_are_typed_errors_never_panics() {
    const TRIALS: u64 = if cfg!(debug_assertions) { 40 } else { 200 };
    let all = chaos_docs();
    let dir = tmp_dir("segfault");
    let opts = IncrementalOptions { seal_threshold: 0, ..IncrementalOptions::default() };

    // Pristine baseline: one sealed segment plus a few buffered docs.
    let mut idx = IncrementalIndex::open(&dir, opts).expect("fresh open");
    idx.ingest_batch(&all[..60]).expect("ingest");
    idx.seal().expect("seal");
    idx.ingest_batch(&all[60..70]).expect("ingest buffered");
    drop(idx);
    let seg_path = dir.join(
        std::fs::read_dir(&dir)
            .expect("read dir")
            .flatten()
            .find_map(|e| {
                let name = e.file_name().into_string().ok()?;
                name.starts_with("seg-").then_some(name)
            })
            .expect("one sealed segment"),
    );
    let pristine_seg = std::fs::read(&seg_path).expect("read segment");
    let pristine_wal = std::fs::read(dir.join(WAL)).expect("read wal");
    let reference = IncrementalIndex::open(&dir, opts)
        .expect("clean reopen")
        .to_one_shot()
        .expect("materialize");

    for trial in 0..TRIALS {
        let mut rng = StdRng::seed_from_u64(0x5E6F_A017 + trial);
        // Restore, then damage the segment: random single-byte flip,
        // truncation (including inside the header), or total emptying.
        std::fs::write(&seg_path, &pristine_seg).expect("restore segment");
        std::fs::write(dir.join(WAL), &pristine_wal).expect("restore wal");
        let mut mutated = pristine_seg.clone();
        match trial % 3 {
            0 => {
                let at = rng.gen_range(0..mutated.len());
                let bit = 1u8 << rng.gen_range(0..8);
                mutated[at] ^= bit;
            }
            1 => mutated.truncate(rng.gen_range(0..mutated.len())),
            _ => mutated.clear(),
        }
        if mutated == pristine_seg {
            continue;
        }
        std::fs::write(&seg_path, &mutated).expect("write damaged segment");

        let result = catch_unwind(AssertUnwindSafe(|| IncrementalIndex::open(&dir, opts)))
            .unwrap_or_else(|_| panic!("segment damage panicked recovery (trial {trial})"));
        match result {
            Err(e) => {
                // Typed rejection: render the diagnostic to prove the
                // error path itself is panic-free.
                assert!(!e.to_string().is_empty());
            }
            Ok(recovered) => {
                // The flip landed somewhere semantically inert; the
                // recovered index must still be exactly right.
                let got = recovered.to_one_shot().expect("materialize survivor");
                assert_eq!(got, reference, "silent segment corruption (trial {trial})");
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn live_service_answers_while_ingesting() {
    // Write-while-serving soak: a live QueryService answers queries from
    // the segment+buffer union while the same service ingests batches
    // concurrently (worker threads search while this thread writes).
    // Every submitted query must resolve, every acknowledged batch must
    // be WAL-durable, and the final directory must recover to exactly
    // the one-shot index over everything ingested.
    let all = chaos_docs();
    let dir = tmp_dir("livesoak");
    let opts = IncrementalOptions {
        seal_threshold: 64,
        merge_threshold: 4,
        ..IncrementalOptions::default()
    };
    let live = Arc::new(LiveIndex::open(&dir, opts).expect("open live index"));
    live.ingest_batch(&all[..50]).expect("warm-up ingest");

    let mut svc = QueryService::start_live(
        Arc::clone(&live),
        ServeConfig { workers: 2, ..ServeConfig::default() },
    );
    let mut rng = StdRng::seed_from_u64(0x11FE_50A4);
    let mut pending = Vec::new();
    let mut i = 50usize;
    while i < all.len() {
        let b = rng.gen_range(1..=16usize).min(all.len() - i);
        let acked = svc.ingest(&all[i..i + b]).expect("live ingest");
        assert_eq!(acked, i as u64..(i + b) as u64, "docIDs are the ingest order");
        i += b;
        for _ in 0..3 {
            let a = format!("t{:07}", rng.gen_range(0..80u32));
            let b = format!("t{:07}", rng.gen_range(0..80u32));
            let text = match rng.gen_range(0..3u32) {
                0 => a,
                1 => format!("{a} AND {b}"),
                _ => format!("{a} OR {b}"),
            };
            let q = Query::parse(&text).expect("query parses");
            pending.push(svc.submit(q, 10).expect("admission"));
        }
    }
    for p in pending {
        p.wait().expect("live query answered");
    }
    let h = svc.health();
    assert_eq!(h.submitted, h.answered() + h.rejected_total(), "accounting");
    assert_eq!(h.panicked, 0, "no isolated panics in the live path");
    svc.shutdown();
    drop(svc);

    let (sealed, buffered) = live.doc_counts();
    assert_eq!(sealed + buffered, all.len() as u64);
    drop(live);

    // Durability: everything acknowledged above survives a reopen.
    let reopened = IncrementalIndex::open(&dir, opts).expect("reopen after soak");
    assert_eq!(reopened.num_docs(), all.len() as u64);
    assert_eq!(
        reopened.to_one_shot().expect("materialize"),
        reference_index(&all, &opts),
        "post-soak index diverges from one-shot build"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_length_and_header_truncated_wal_recover_empty() {
    // A crash can leave the WAL at any length below its 8-byte header;
    // all of them mean "no unsealed docs" and must recover cleanly.
    for len in 0..8usize {
        let dir = tmp_dir(&format!("shortwal{len}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join(WAL), vec![0xAB; len]).expect("write short wal");
        let idx = IncrementalIndex::open(&dir, IncrementalOptions::default())
            .expect("short WAL recovers");
        assert_eq!(idx.num_docs(), 0);
        assert!(len == 0 || idx.recovery_report().wal_header_rebuilt);
        std::fs::remove_dir_all(&dir).ok();
    }
}
