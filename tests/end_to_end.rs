//! Workspace-level integration: corpus generation → index construction →
//! serialization → both engines → top-k, exercised together.

use iiu_core::{CpuSearchEngine, IiuSearchEngine, Query, SearchEngine};
use iiu_index::io::{deserialize, serialize};
use iiu_index::{Bm25Params, Partitioner};
use iiu_workloads::{CorpusConfig, QuerySampler};

#[test]
fn full_pipeline_corpus_to_ranked_hits() {
    let corpus = CorpusConfig::tiny(2026).generate();
    let total = corpus.total_postings();
    assert!(total > 1_000, "tiny corpus should still have real mass");
    let index = corpus.into_default_index();
    assert_eq!(index.size_stats().postings, total);

    let mut sampler = QuerySampler::new(&index, 1);
    let (a, b) = sampler.pair_queries(1).remove(0);
    let q = Query::parse(&format!("{a} AND {b}")).unwrap();

    let mut cpu = CpuSearchEngine::new(&index);
    let mut iiu = IiuSearchEngine::new(&index);
    let rc = cpu.search(&q, 10).unwrap();
    let ri = iiu.search(&q, 10).unwrap();
    assert_eq!(rc.hits, ri.hits);
    assert!(ri.latency_ns() > 0.0);
}

#[test]
fn serialized_index_serves_identical_results() {
    let index = CorpusConfig::tiny(7).generate().into_default_index();
    let reloaded = deserialize(&serialize(&index).unwrap()).unwrap();
    assert_eq!(index, reloaded);

    let mut sampler = QuerySampler::new(&index, 3);
    let term = sampler.single_queries(1).remove(0);
    let q = Query::term(term);
    let mut before = IiuSearchEngine::new(&index);
    let mut after = IiuSearchEngine::new(&reloaded);
    assert_eq!(before.search(&q, 10).unwrap().hits, after.search(&q, 10).unwrap().hits);
}

#[test]
fn custom_bm25_parameters_flow_through() {
    let corpus = CorpusConfig::tiny(9).generate();
    let stock = corpus.clone().into_default_index();
    let flat = corpus.into_index(
        Partitioner::default(),
        Bm25Params { k1: 0.01, b: 0.0 }, // nearly binary relevance
    );
    let mut sampler = QuerySampler::new(&stock, 5);
    let term = sampler.single_queries(1).remove(0);
    let q = Query::term(term);
    let hits_stock = CpuSearchEngine::new(&stock).search(&q, 5).unwrap().hits;
    let hits_flat = CpuSearchEngine::new(&flat).search(&q, 5).unwrap().hits;
    // Same documents reachable, but scores must differ.
    assert!(hits_stock.iter().zip(&hits_flat).any(|(a, b)| (a.score - b.score).abs() > 1e-6));
}

#[test]
fn partitioner_choice_is_invisible_to_results() {
    let corpus = CorpusConfig::tiny(11).generate();
    let dynamic = corpus.clone().into_default_index();
    let fixed = corpus.into_index(Partitioner::fixed(64), Bm25Params::default());

    let mut sampler = QuerySampler::new(&dynamic, 4);
    let (a, b) = sampler.pair_queries(1).remove(0);
    for text in [format!("{a} AND {b}"), format!("{a} OR {b}"), a.clone()] {
        let q = Query::parse(&text).unwrap();
        let rd = IiuSearchEngine::new(&dynamic).search(&q, 20).unwrap();
        let rf = IiuSearchEngine::new(&fixed).search(&q, 20).unwrap();
        assert_eq!(rd.hits, rf.hits, "partitioning must not change semantics ({text})");
    }
}

#[test]
fn codecs_agree_with_index_lists() {
    // Every baseline codec must round-trip every posting list the corpus
    // generator produces.
    let index = CorpusConfig::tiny(13).generate().into_default_index();
    for codec in iiu_codecs::all_codecs() {
        for t in (0..index.num_terms() as u32).step_by(37) {
            let list = index.encoded_list(t).decode_all();
            if list.is_empty() {
                continue;
            }
            let ids = list.doc_ids();
            let bytes = codec.encode_sorted(&ids);
            assert_eq!(
                codec.decode_sorted(&bytes, ids.len()),
                ids,
                "codec {} failed on term {t}",
                codec.name()
            );
        }
    }
}
