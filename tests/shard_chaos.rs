//! Shard-level chaos campaign against the fail-soft serving layer.
//!
//! The acceptance bar for sharded fail-soft serving: 10 000 queries, every
//! one forced onto the sharded CPU path (the device is sabotaged
//! throughout), while shard workers are panicked at random and in a
//! deterministic quarantine-tripping burst, stalled past the pool
//! deadline, and assassinated mid-stream. The service must
//!
//! * stay available — every admitted query resolves, no coordinator hang,
//! * label partial answers truthfully — each one carries
//!   [`Degradation::ShardsUnavailable`] with the exact missing-shard set,
//! * keep surviving-shard hits bit-identical to an unsharded engine run
//!   over the surviving documents, and
//! * trip shard quarantine during the burst and recover via half-open
//!   probes afterwards, respawning every assassinated worker.
//!
//! Mirrors `tests/soak.rs`, one layer down: that soak chaoses the device
//! path and watches the breaker; this one chaoses the shard pool under the
//! CPU fallback and watches shard supervision.
//!
//! The campaign runs under the **hybrid scheduler** with Zipf-skewed
//! query popularity: cheap queries answer inline (inter-query) and heavy
//! ones fan out (intra-query) through the shared shard-task pool, so the
//! availability and bit-identity bars cover both routes at once.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use iiu_core::{CpuSearchEngine, Degradation, Hit, Query, SearchEngine};
use iiu_index::InvertedIndex;
use iiu_serve::{
    BreakerConfig, FaultPlan, QueryService, RetryPolicy, SchedulerConfig, ServeConfig,
    ShardChaosPlan, ShardPoolConfig,
};
use iiu_workloads::{traffic, CorpusConfig, TrafficConfig};

const N_QUERIES: usize = 10_000;
const SHARDS: usize = 4;
const TOP_K: usize = 10;
/// Engine-sequence window in which every execution on shard 1 panics —
/// long enough to trip quarantine (threshold 4) many times over, placed
/// mid-stream so the half-open recovery is also observable. Engine
/// sequence numbers count only fanned-out queries: under the hybrid
/// scheduler, inline (inter-query) answers never reach the shard engine,
/// so the windows sit early enough that the fan-out share of 10k queries
/// is certain to cross them.
const PANIC_BURST: (u64, u64, usize) = (1_000, 1_060, 1);
/// Worker assassinations `(engine seq, shard)`, exercising dead-worker
/// detection and pool-worker respawn twice.
const KILLS: [(u64, usize); 2] = [(2_000, 2), (3_000, 3)];

fn chaos_index() -> InvertedIndex {
    CorpusConfig { n_docs: 1_500, n_terms: 150, ..CorpusConfig::tiny(0x5AD) }
        .generate()
        .into_default_index()
}

/// The median longest-list size over the queries actually offered: a
/// heavy threshold that guarantees the hybrid router exercises both
/// modes on this traffic (the query sampler is df-biased, so a
/// dictionary-wide median would classify everything as heavy).
fn stream_median_heavy_df(index: &InvertedIndex, texts: &[String]) -> u64 {
    let mut maxes: Vec<u64> = texts
        .iter()
        .map(|t| {
            let q = Query::parse(t).expect("traffic query parses");
            iiu_core::estimate_query_cost(index, &q.terms()).max_list_postings
        })
        .collect();
    maxes.sort_unstable();
    assert!(
        maxes.first() < maxes.last(),
        "degenerate traffic: every query has the same longest list"
    );
    maxes[maxes.len() / 2]
}

/// Keeps intentional injected shard panics from spraying backtraces over
/// the test output; real panics still print.
fn silence_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.payload().downcast_ref::<String>().map(String::as_str).unwrap_or("");
        if !msg.contains("injected") {
            default_hook(info);
        }
    }));
}

/// What an unsharded engine answers over only the surviving documents: the
/// full ranking, minus documents living on missing shards, cut to `k`.
/// Exact because `top_k`'s `rank_cmp` ordering is total and deterministic.
fn surviving_reference(
    index: &InvertedIndex,
    text: &str,
    missing: &[usize],
    k: usize,
) -> Vec<Hit> {
    let query = Query::parse(text).expect("traffic query parses");
    let full_k = index.num_docs() as usize + 1;
    let mut engine = CpuSearchEngine::new(index);
    let mut hits = engine.search(&query, full_k).expect("reference search succeeds").hits;
    hits.retain(|h| !missing.contains(&(h.doc_id as usize % SHARDS)));
    hits.truncate(k);
    hits
}

#[test]
fn shard_chaos_campaign_stays_available_and_truthful() {
    silence_injected_panics();
    let index = Arc::new(chaos_index());

    let stream = traffic::open_loop(
        &index,
        &TrafficConfig {
            rate_qps: 1e9, // arrival times unused: waves below self-pace
            n_queries: N_QUERIES,
            unknown_term_rate: 0.0,
            seed: 0xC405 ^ 0x5eed,
            // Head-heavy popularity: the hybrid scheduler sees the same
            // hot queries repeatedly, like production traffic would.
            zipf_skew: 1.0,
            ..TrafficConfig::default()
        },
    );
    let texts: Vec<String> = stream.iter().map(|tq| tq.text.clone()).collect();

    let cfg = ServeConfig {
        workers: 4,
        queue_capacity: 512,
        default_deadline: Duration::from_secs(30),
        retry: RetryPolicy { max_attempts: 1, ..RetryPolicy::default() },
        breaker: BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(200),
            probe_successes: 2,
        },
        // Sabotage every device attempt: the breaker opens almost
        // immediately and the whole stream exercises the sharded CPU path.
        fault: FaultPlan { burst: Some((0, u64::MAX)), seed: 0xC405, ..FaultPlan::NONE },
        pruned_cpu_fallback: true,
        shards: SHARDS,
        shard_pool: ShardPoolConfig {
            deadline: Some(Duration::from_millis(50)),
            quarantine_threshold: 4,
            quarantine_cooldown: Duration::from_millis(30),
            ..ShardPoolConfig::default()
        },
        shard_chaos: ShardChaosPlan {
            panic_rate: 0.003,
            stall_rate: 0.0003,
            stall: Duration::from_millis(80),
            panic_burst: Some(PANIC_BURST),
            kills: KILLS.to_vec(),
            seed: 0x5EED_C405,
        },
        fail_closed_shards: false,
        scheduler: SchedulerConfig {
            hybrid: true,
            heavy_df_threshold: stream_median_heavy_df(&index, &texts),
            ..SchedulerConfig::default()
        },
        ..ServeConfig::default()
    };

    let mut svc = QueryService::start(Arc::clone(&index), cfg);

    // Closed-loop waves sized under the queue capacity: nothing sheds, so
    // availability is exactly "every submitted query answers".
    let mut answered = 0u64;
    let mut rejected = 0u64;
    let mut partials = 0u64;
    let mut checked = 0u64;
    let mut reference_cache: HashMap<(String, Vec<usize>), Vec<Hit>> = HashMap::new();
    for (wave_no, wave) in stream.chunks(400).enumerate() {
        let pending: Vec<_> = wave
            .iter()
            .map(|tq| {
                let q = Query::parse(&tq.text).expect("generated query parses");
                (tq.text.as_str(), svc.submit(q, TOP_K).expect("waves never shed"))
            })
            .collect();
        for (i, (text, p)) in pending.into_iter().enumerate() {
            let resp = match p.wait() {
                Ok(resp) => resp,
                Err(_) => {
                    rejected += 1;
                    continue;
                }
            };
            answered += 1;
            let missing: Option<&[usize]> = resp.degraded.iter().find_map(|d| match d {
                Degradation::ShardsUnavailable { missing, total } => {
                    assert_eq!(*total, SHARDS, "wrong shard total in label");
                    assert!(
                        !missing.is_empty() && missing.len() < SHARDS,
                        "degenerate missing set {missing:?}"
                    );
                    Some(missing.as_slice())
                }
                _ => None,
            });
            if missing.is_some() {
                partials += 1;
            }
            // Bit-identity: every partial answer is checked against an
            // unsharded run over its surviving documents; complete answers
            // are spot-checked (full 10k reference runs would dominate the
            // test's wall clock without adding coverage).
            let spot_check = (wave_no * 400 + i) % 16 == 0;
            if let Some(miss) = missing {
                let key = (text.to_string(), miss.to_vec());
                let expect = reference_cache
                    .entry(key)
                    .or_insert_with(|| surviving_reference(&index, text, miss, TOP_K));
                assert_eq!(
                    &resp.hits, expect,
                    "partial hits diverge from surviving-doc reference \
                     (query {text:?}, missing {miss:?})"
                );
                checked += 1;
            } else if spot_check {
                let key = (text.to_string(), Vec::new());
                let expect = reference_cache
                    .entry(key)
                    .or_insert_with(|| surviving_reference(&index, text, &[], TOP_K));
                assert_eq!(
                    &resp.hits, expect,
                    "complete answer diverges from reference (query {text:?})"
                );
                checked += 1;
            }
        }
    }
    svc.shutdown();
    let h = svc.health();

    // 1. Availability: every admitted query resolved — and resolved with
    //    hits. Nothing hung (the test finishing is the hang check: every
    //    wait() returned) and nothing was shed or failed: even a total
    //    shard outage is rescued by the unsharded CPU engine.
    assert_eq!(answered + rejected, N_QUERIES as u64, "queries lost");
    assert_eq!(rejected, 0, "chaos must degrade, not reject: {h}");
    assert_eq!(h.submitted, N_QUERIES as u64, "admission lost queries: {h}");
    assert_eq!(h.answered(), answered, "caller-side vs stats mismatch: {h}");

    // 2. Partial answers happened and were all truthfully labeled; the
    //    service-side counter agrees with what callers saw.
    assert!(partials >= 1, "chaos produced no partial answers: {h}");
    assert_eq!(h.shard_partials, partials, "partial-answer accounting: {h}");
    assert!(
        partials < answered,
        "no complete answers at all — quarantine never recovered? {h}"
    );
    assert!(checked >= partials, "reference checking skipped partials");

    // 3. Shard supervision observed every injected failure mode.
    let burst_shard = &h.shard_health[PANIC_BURST.2];
    assert!(burst_shard.quarantine_trips >= 1, "panic burst never tripped quarantine: {h}");
    assert!(
        burst_shard.quarantine_recoveries >= 1,
        "quarantined shard never recovered half-open: {h}"
    );
    let total_panics: u64 = h.shard_health.iter().map(|s| s.panics).sum();
    let total_timeouts: u64 = h.shard_health.iter().map(|s| s.timeouts).sum();
    let total_respawns: u64 = h.pool_workers.iter().map(|w| w.respawns).sum();
    assert!(total_panics >= 1, "no shard panics recorded: {h}");
    assert!(total_timeouts >= 1, "no stall ever wedged a shard: {h}");
    assert!(total_respawns >= 1, "assassinated pool workers were never respawned: {h}");

    // 4. The hybrid scheduler actually used both routes, and every
    //    fallback query was routed exactly once.
    assert!(h.sched_inline >= 1, "no query ever routed inter-query: {h}");
    assert!(h.sched_fanout >= 1, "no query ever fanned out: {h}");
    assert_eq!(h.sched_inline + h.sched_fanout, h.cpu_fallbacks, "routing accounting: {h}");

    println!(
        "shard chaos: {answered} answered, {partials} partial, {checked} \
         reference-checked, {} inline / {} fanned out\n{h}",
        h.sched_inline, h.sched_fanout
    );
}
