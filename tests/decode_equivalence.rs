//! Equivalence suite for the hot-path decode kernels: the batch unpack
//! kernel against the retained scalar reference, fused block decode
//! against the allocating wrapper, and engine-level invariance of both
//! results and logical cost tallies under scratch reuse and block
//! caching.

use iiu_baseline::CpuEngine;
use iiu_index::bitpack::{
    pack_all, try_unpack_into, unpack_all, unpack_all_scalar, unpack_into, BitWriter,
};
use iiu_index::block::EncodedList;
use iiu_index::{Posting, PostingList};
use iiu_workloads::{CorpusConfig, QuerySampler};
use proptest::prelude::*;

/// Masks `v` down to `width` bits so it is representable.
fn clamp(v: u32, width: u8) -> u32 {
    if width == 0 {
        0
    } else if width >= 32 {
        v
    } else {
        v & ((1u32 << width) - 1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The batch kernel decodes exactly what was packed, at every width
    /// 0..=32, for lengths crossing the 32-value group boundary, and it
    /// appends rather than overwriting.
    #[test]
    fn prop_unpack_into_matches_packed_values(
        width in 0u8..=32,
        raw in proptest::collection::vec(0u32..u32::MAX, 0..200),
    ) {
        let values: Vec<u32> = raw.iter().map(|&v| clamp(v, width)).collect();
        let bytes = pack_all(&values, width);

        let mut out = vec![0xDEAD_BEEF];
        unpack_into(&bytes, 0, values.len(), width, &mut out);
        prop_assert_eq!(out[0], 0xDEAD_BEEF, "must append, not overwrite");
        prop_assert_eq!(&out[1..], &values[..]);

        prop_assert_eq!(unpack_all(&bytes, values.len(), width), values.clone());
        prop_assert_eq!(unpack_all_scalar(&bytes, values.len(), width), values);
    }

    /// Unaligned starts: after `lead` junk bits, the kernel still decodes
    /// the packed values — every (lead mod 8, width) combination reaches
    /// the word-window path with a nonzero in-byte offset.
    #[test]
    fn prop_unpack_into_handles_unaligned_offsets(
        width in 0u8..=32,
        lead in 0usize..64,
        raw in proptest::collection::vec(0u32..u32::MAX, 0..140),
    ) {
        let values: Vec<u32> = raw.iter().map(|&v| clamp(v, width)).collect();
        let mut w = BitWriter::new();
        for i in 0..lead {
            w.write((i as u32) & 1, 1);
        }
        for &v in &values {
            w.write(v, width);
        }
        let bytes = w.finish();

        let mut out = Vec::new();
        unpack_into(&bytes, lead, values.len(), width, &mut out);
        prop_assert_eq!(out, values);
    }

    /// Truncated payloads surface a typed error and leave the output
    /// untouched; oversized widths are rejected the same way.
    #[test]
    fn prop_try_unpack_into_rejects_truncation(
        width in 1u8..=32,
        raw in proptest::collection::vec(0u32..u32::MAX, 1..100),
        cut in 1usize..8,
    ) {
        let values: Vec<u32> = raw.iter().map(|&v| clamp(v, width)).collect();
        let bytes = pack_all(&values, width);
        // Claim more values than were packed (8 extra always outruns the
        // up-to-7 bits of byte-alignment slack), or cut real bytes off.
        let mut out = vec![7u32];
        prop_assert!(try_unpack_into(&bytes, 0, values.len() + 8, width, &mut out).is_err());
        let keep = bytes.len().saturating_sub(cut);
        prop_assert!(try_unpack_into(&bytes[..keep], 0, values.len(), width, &mut out).is_err());
        prop_assert_eq!(out, vec![7u32], "failed unpack must not touch out");
        let mut out = Vec::new();
        prop_assert!(try_unpack_into(&bytes, 0, values.len(), 33, &mut out).is_err());
    }

    /// The fused zero-alloc block decode and the allocating wrapper agree
    /// with each other and with the postings that were encoded, across
    /// random gap/tf distributions (including tf == 1 lists that encode
    /// at tf_bits == 1 and constant lists hitting width 0 paths) and
    /// random block partitions.
    #[test]
    fn prop_decode_block_into_matches_decode_block(
        pairs in proptest::collection::vec((1u32..2000, 1u32..200), 1..300),
        chunk in 1usize..48,
    ) {
        let mut list = PostingList::new();
        let mut doc = 0u32;
        for &(gap, tf) in &pairs {
            doc += gap;
            list.push(doc, tf);
        }
        let n = list.len();
        let mut block_lens = vec![chunk; n / chunk];
        if n % chunk != 0 {
            block_lens.push(n % chunk);
        }
        let enc = EncodedList::encode(&list, &block_lens).expect("encodable");

        let mut fused_all: Vec<Posting> = Vec::new();
        let mut reused = Vec::new();
        for b in 0..enc.num_blocks() {
            let fresh = enc.decode_block(b);
            reused.clear();
            enc.decode_block_into(b, &mut reused);
            prop_assert_eq!(&fresh, &reused);
            let mut tried = Vec::new();
            enc.try_decode_block_into(b, &mut tried).expect("valid block");
            prop_assert_eq!(&fresh, &tried);
            fused_all.extend_from_slice(&reused);
        }
        prop_assert_eq!(fused_all, list.as_slice().to_vec());
    }
}

/// Running the same queries twice on one engine (warm scratch + warm
/// block cache) and on a fresh engine must return bit-identical hits and
/// identical logical decode tallies — the cache changes wall-clock work,
/// never results or the cost-model accounting. Cache hit counters are the
/// only thing allowed to move.
#[test]
fn scratch_reuse_and_caching_never_change_results_or_tallies() {
    let index = CorpusConfig::tiny(0xC0FFEE).generate().into_default_index();
    let mut sampler = QuerySampler::new(&index, 9);
    let singles = sampler.single_queries(8);
    let pairs = sampler.pair_queries(8);

    let mut warm = CpuEngine::new(&index);
    for term in &singles {
        let cold = CpuEngine::new(&index).search_single(term, 10).expect("known term");
        let first = warm.search_single(term, 10).expect("known term");
        let second = warm.search_single(term, 10).expect("known term");
        for run in [&first, &second] {
            assert_eq!(cold.hits, run.hits, "hits must be bit-identical for {term}");
            assert_eq!(cold.counts.blocks_decoded, run.counts.blocks_decoded, "{term}");
            assert_eq!(cold.counts.postings_decoded, run.counts.postings_decoded, "{term}");
            assert_eq!(cold.candidates, run.candidates, "{term}");
        }
    }

    let mut hits_total = 0u64;
    for (a, b) in &pairs {
        let cold_and = CpuEngine::new(&index).search_intersection(a, b, 10).expect("known");
        let warm_and = warm.search_intersection(a, b, 10).expect("known");
        assert_eq!(cold_and.hits, warm_and.hits);
        assert_eq!(cold_and.counts.blocks_decoded, warm_and.counts.blocks_decoded);
        assert_eq!(cold_and.counts.postings_decoded, warm_and.counts.postings_decoded);
        // Every probe consults the cache: probes = hits + misses.
        assert_eq!(
            warm_and.counts.cache_hits + warm_and.counts.cache_misses,
            cold_and.counts.cache_hits + cold_and.counts.cache_misses,
            "probe count must not depend on cache temperature"
        );
        hits_total += warm_and.counts.cache_hits;

        let cold_or = CpuEngine::new(&index).search_union(a, b, 10).expect("known");
        let warm_or = warm.search_union(a, b, 10).expect("known");
        assert_eq!(cold_or.hits, warm_or.hits);
        assert_eq!(cold_or.counts.blocks_decoded, warm_or.counts.blocks_decoded);
        assert_eq!(cold_or.counts.postings_decoded, warm_or.counts.postings_decoded);
    }
    // Consecutive same-block probes exist in any clustered intersection;
    // the tiny corpus produces some, so the counter must have moved.
    assert!(hits_total > 0, "expected at least one block-cache hit across 8 AND queries");
}
