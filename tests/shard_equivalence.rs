//! Equivalence suite for document-sharded execution: for every shard
//! count, every k (including k = 0 and k larger than the result set),
//! every query shape, and both execution modes (exhaustive and pruned
//! with the shared cross-shard threshold), the sharded engine must
//! return *bit-identical* (docID, score) lists to the unsharded engine —
//! on random corpora and on the deterministic sampled workload. It also
//! pins the threshold-broadcast protocol: a seeded two-shard publication
//! interleaving must stay monotone and never price out a boundary tie.

use std::sync::Arc;

use iiu_baseline::topk::{rank_cmp, top_k, Hit, SharedThreshold};
use iiu_baseline::{CpuEngine, ShardedEngine};
use iiu_index::shard::ShardedIndex;
use iiu_index::{BuildOptions, Fixed, IndexBuilder, InvertedIndex, Partitioner};
use iiu_workloads::{CorpusConfig, QuerySampler};
use proptest::prelude::*;

const KS: [usize; 4] = [0, 1, 10, 1000];
const SHARDS: [usize; 4] = [1, 2, 4, 7];

/// Builds an index from synthetic docs (term ranks → words) with small
/// fixed blocks so even short lists span several blocks.
fn build_index(docs: &[Vec<u8>]) -> InvertedIndex {
    let mut b = IndexBuilder::new(BuildOptions {
        partitioner: Partitioner::fixed(4),
        ..Default::default()
    });
    for doc in docs {
        let text: Vec<String> = doc.iter().map(|t| format!("t{t}")).collect();
        b.add_document(&text.join(" "));
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random corpora × shard counts × ks × shapes × both modes: sharded
    /// results are bit-identical to the unsharded engine.
    #[test]
    fn prop_sharded_is_bit_identical_to_unsharded(
        docs in proptest::collection::vec(
            proptest::collection::vec(0u8..8, 1..24),
            1..40,
        ),
    ) {
        let idx = build_index(&docs);
        let mut vocab: Vec<u8> = docs.iter().flatten().copied().collect();
        vocab.sort_unstable();
        vocab.dedup();
        let terms: Vec<String> = vocab.iter().map(|t| format!("t{t}")).collect();

        for n in SHARDS {
            let split = Arc::new(ShardedIndex::split(&idx, n).expect("split"));
            for pruned in [false, true] {
                let mut plain = CpuEngine::new(&idx).with_pruning(pruned);
                let eng = ShardedEngine::new(Arc::clone(&split)).with_pruning(pruned);
                for k in KS {
                    for t in &terms {
                        let a = plain.search_single(t, k).expect("known term");
                        let b = eng.search_single(t, k).expect("known term");
                        prop_assert_eq!(
                            a.hits, b.hits,
                            "single {} n={} pruned={} k={}", t, n, pruned, k
                        );
                    }
                    for pair in terms.windows(2) {
                        let (ta, tb) = (&pair[0], &pair[1]);
                        let a = plain.search_intersection(ta, tb, k).expect("known");
                        let b = eng.search_intersection(ta, tb, k).expect("known");
                        prop_assert_eq!(
                            a.hits, b.hits,
                            "{} AND {} n={} pruned={} k={}", ta, tb, n, pruned, k
                        );
                        let a = plain.search_union(ta, tb, k).expect("known");
                        let b = eng.search_union(ta, tb, k).expect("known");
                        prop_assert_eq!(
                            a.hits, b.hits,
                            "{} OR {} n={} pruned={} k={}", ta, tb, n, pruned, k
                        );
                    }
                }
            }
        }
    }
}

/// The deterministic sampled workload: sharded hits match unsharded hits
/// bit for bit at every shard count and k, in both execution modes.
#[test]
fn sharded_matches_unsharded_on_sampled_workload() {
    let index = CorpusConfig::tiny(0xC0FFEE).generate().into_default_index();
    let mut sampler = QuerySampler::new(&index, 9);
    let singles = sampler.single_queries(6);
    let pairs = sampler.pair_queries(6);

    for n in SHARDS {
        let split = Arc::new(ShardedIndex::split(&index, n).expect("split"));
        for pruned in [false, true] {
            let mut plain = CpuEngine::new(&index).with_pruning(pruned);
            let eng = ShardedEngine::new(Arc::clone(&split)).with_pruning(pruned);
            for k in KS {
                for t in &singles {
                    let a = plain.search_single(t, k).expect("sampled term");
                    let b = eng.search_single(t, k).expect("sampled term");
                    assert_eq!(a.hits, b.hits, "single {t} n={n} pruned={pruned} k={k}");
                }
                for (ta, tb) in &pairs {
                    let a = plain.search_intersection(ta, tb, k).expect("sampled");
                    let b = eng.search_intersection(ta, tb, k).expect("sampled");
                    assert_eq!(a.hits, b.hits, "{ta} AND {tb} n={n} pruned={pruned} k={k}");
                    let a = plain.search_union(ta, tb, k).expect("sampled");
                    let b = eng.search_union(ta, tb, k).expect("sampled");
                    assert_eq!(a.hits, b.hits, "{ta} OR {tb} n={n} pruned={pruned} k={k}");
                }
            }
        }
    }
}

/// Codec matrix: sharded execution stays bit-identical to the unsharded
/// bit-packed reference when the index is encoded under every block
/// codec — splitting propagates the codec and neither the shared
/// threshold nor the per-shard decode path depends on it.
#[test]
fn sharded_matches_unsharded_under_every_codec() {
    use iiu_index::{Bm25Params, CodecId};

    let reference = CorpusConfig::tiny(0xC0FFEE).generate().into_default_index();
    let mut sampler = QuerySampler::new(&reference, 9);
    let singles = sampler.single_queries(4);
    let pairs = sampler.pair_queries(4);
    let mut ref_plain = CpuEngine::new(&reference);

    for codec in CodecId::ALL {
        let index = CorpusConfig::tiny(0xC0FFEE).generate().into_index_codec(
            Partitioner::default(),
            Bm25Params::default(),
            codec,
        );
        for n in [2usize, 4] {
            let split = Arc::new(ShardedIndex::split(&index, n).expect("split"));
            for shard in split.shards() {
                assert_eq!(shard.codec(), codec, "split must propagate the codec");
            }
            for pruned in [false, true] {
                let eng = ShardedEngine::new(Arc::clone(&split)).with_pruning(pruned);
                for k in KS {
                    for t in &singles {
                        let a = ref_plain.search_single(t, k).expect("sampled term");
                        let b = eng.search_single(t, k).expect("sampled term");
                        assert_eq!(
                            a.hits, b.hits,
                            "{codec} single {t} n={n} pruned={pruned} k={k}"
                        );
                    }
                    for (ta, tb) in &pairs {
                        let a = ref_plain.search_intersection(ta, tb, k).expect("sampled");
                        let b = eng.search_intersection(ta, tb, k).expect("sampled");
                        assert_eq!(
                            a.hits, b.hits,
                            "{codec} {ta} AND {tb} n={n} pruned={pruned} k={k}"
                        );
                        let a = ref_plain.search_union(ta, tb, k).expect("sampled");
                        let b = eng.search_union(ta, tb, k).expect("sampled");
                        assert_eq!(
                            a.hits, b.hits,
                            "{codec} {ta} OR {tb} n={n} pruned={pruned} k={k}"
                        );
                    }
                }
            }
        }
    }
}

/// Source matrix, sharded leg (DESIGN.md §19): a shard manifest loaded
/// heap-side and through the mapped loader drives the sharded engine to
/// bit-identical hits — and identical degradation labels — against the
/// unsharded heap reference, across codecs, shapes, ks and both
/// execution modes.
#[test]
fn mapped_manifest_matches_heap_under_every_codec() {
    use iiu_index::{io, storage, Bm25Params, CodecId};

    let reference = CorpusConfig::tiny(0xC0FFEE).generate().into_default_index();
    let mut sampler = QuerySampler::new(&reference, 9);
    let singles = sampler.single_queries(4);
    let pairs = sampler.pair_queries(4);
    let mut ref_plain = CpuEngine::new(&reference);

    for codec in CodecId::ALL {
        let index = CorpusConfig::tiny(0xC0FFEE).generate().into_index_codec(
            Partitioner::default(),
            Bm25Params::default(),
            codec,
        );
        let split = ShardedIndex::split(&index, 3).expect("split");
        let bytes = io::serialize_sharded(&split).expect("serialize manifest");
        let path = std::env::temp_dir()
            .join(format!("iiu-shard-src-{}-{codec}", std::process::id()));
        std::fs::write(&path, &bytes).expect("temp file writable");
        let mapped = Arc::new(storage::map_sharded(&path).expect("mapped manifest"));
        let heap = Arc::new(io::deserialize_sharded(&bytes).expect("heap manifest"));
        assert_eq!(*mapped, *heap, "{codec}: manifest sources must assemble one index");
        for shard in mapped.shards() {
            assert!(shard.source().is_mapped(), "{codec}");
        }

        for pruned in [false, true] {
            let m_eng = ShardedEngine::new(Arc::clone(&mapped)).with_pruning(pruned);
            let h_eng = ShardedEngine::new(Arc::clone(&heap)).with_pruning(pruned);
            for k in KS {
                for t in &singles {
                    let r = ref_plain.search_single(t, k).expect("sampled term");
                    let h = h_eng.search_single(t, k).expect("sampled term");
                    let m = m_eng.search_single(t, k).expect("sampled term");
                    assert_eq!(m.hits, r.hits, "{codec} mmap single {t} pruned={pruned} k={k}");
                    assert_eq!(m.missing, h.missing, "{codec} single {t} k={k}");
                    assert!(m.complete(), "{codec} healthy shards must all answer");
                }
                for (ta, tb) in &pairs {
                    let r = ref_plain.search_intersection(ta, tb, k).expect("sampled");
                    let h = h_eng.search_intersection(ta, tb, k).expect("sampled");
                    let m = m_eng.search_intersection(ta, tb, k).expect("sampled");
                    assert_eq!(
                        m.hits, r.hits,
                        "{codec} mmap {ta} AND {tb} pruned={pruned} k={k}"
                    );
                    assert_eq!(m.missing, h.missing, "{codec} {ta} AND {tb} k={k}");
                    let r = ref_plain.search_union(ta, tb, k).expect("sampled");
                    let h = h_eng.search_union(ta, tb, k).expect("sampled");
                    let m = m_eng.search_union(ta, tb, k).expect("sampled");
                    assert_eq!(
                        m.hits, r.hits,
                        "{codec} mmap {ta} OR {tb} pruned={pruned} k={k}"
                    );
                    assert_eq!(m.missing, h.missing, "{codec} {ta} OR {tb} k={k}");
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

/// Splitting must preserve per-document scores exactly (global stats flow
/// into every shard), so the local-merge/global-merge argument holds.
#[test]
fn shard_local_topk_always_contains_its_global_topk_members() {
    let index = CorpusConfig::tiny(0xFACADE).generate().into_default_index();
    let mut sampler = QuerySampler::new(&index, 4);
    let term = sampler.single_queries(1).remove(0);
    let n = 3usize;
    let split = ShardedIndex::split(&index, n).expect("split");

    let mut plain = CpuEngine::new(&index);
    let k = 10;
    let global = plain.search_single(&term, k).expect("known").hits;

    // Recompute each shard's local top-k directly and check the global
    // top-k is a subset of the union after docID remapping.
    let mut union: Vec<Hit> = Vec::new();
    for (s, shard) in split.shards().iter().enumerate() {
        let mut eng = CpuEngine::new(shard);
        let local = eng.search_single(&term, k).expect("uniform dictionary").hits;
        union.extend(
            local
                .into_iter()
                .map(|h| Hit { doc_id: h.doc_id * n as u32 + s as u32, score: h.score }),
        );
    }
    union.sort_by(rank_cmp);
    let merged = top_k(union, k);
    assert_eq!(merged, global, "concat + rank_cmp + truncate must equal unsharded top-k");
}

/// Satellite regression for the threshold-broadcast protocol: a seeded
/// two-shard interleaving where one lane's publications arrive stale. A
/// racy `store(Relaxed)` publication would let the visible threshold go
/// *backwards* (re-admitting blocks) or, worse, a non-strict foreign
/// threshold would prune a boundary tie. `fetch_max` + strict() must keep
/// the visible value monotone and never above any lane's published
/// maximum.
#[test]
fn seeded_two_shard_interleaving_keeps_threshold_monotone_and_tie_safe() {
    // Deterministic interleaving: lane A publishes an ascending ramp (a
    // shard whose heap tightens), lane B replays A's values delayed by 5
    // steps (a shard echoing stale information).
    let shared = SharedThreshold::new();
    let ramp: Vec<u32> = (1..=200).map(|i| i * 3).collect();
    let mut seen = 0u32;
    for i in 0..ramp.len() + 5 {
        if i < ramp.len() {
            shared.publish(Fixed::from_raw(ramp[i]));
        }
        if i >= 5 {
            shared.publish(Fixed::from_raw(ramp[i - 5])); // stale echo
        }
        let now = shared.raw();
        assert!(now >= seen, "visible threshold went backwards: {now} < {seen}");
        seen = now;
        // Strict semantics: the foreign threshold must never claim the
        // published score itself is dead (that score is held by a real
        // document that could win a docID tie).
        if let Some(strict) = shared.strict() {
            assert!(strict.raw() < now, "strict() must stay below the published value");
        }
    }
    assert_eq!(seen, 600, "final threshold is the max over both lanes");
}
