//! Workspace-level robustness: the hardened load path survives a large
//! deterministic corruption campaign, the simulator watchdog reports
//! stalls instead of spinning, and unknown query terms degrade responses
//! instead of erroring.

use iiu_core::{CpuSearchEngine, Degradation, IiuSearchEngine, Query, SearchEngine};
use iiu_index::io::{deserialize, serialize, serialize_sharded};
use iiu_index::{
    mapped_sharded_survival_report, mapped_survival_report, survival_report, BuildOptions,
    IndexBuilder, PositionIndex, ShardedIndex,
};
use iiu_sim::{IiuMachine, SimConfig, SimError, SimQuery};
use iiu_workloads::{CorpusConfig, QuerySampler};
use proptest::prelude::*;

fn index() -> iiu_index::InvertedIndex {
    CorpusConfig::tiny(0xDEAD_BEEF).generate().into_default_index()
}

#[test]
fn a_thousand_corruptions_never_panic_or_silently_load() {
    // The acceptance bar of the hardened format: 1,000+ deterministic
    // corruptions, zero panics (a panic fails this test), zero loads that
    // silently accept corrupt data.
    let idx = index();
    let bytes = serialize(&idx).expect("serialize");
    let report = survival_report(&idx, &bytes, 1_200, 0x5eed_0001);
    assert!(report.survived(), "campaign not survived: {report:?}");
    assert_eq!(report.trials, 1_200);
    assert!(report.typed_errors > 1_000, "{report:?}");
    assert!(report.checksum_rejections > 0, "checksums never fired: {report:?}");
    assert_eq!(report.accepted_divergent, 0, "{report:?}");
}

fn scratch_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("iiu-robustness-{}-{tag}", std::process::id()))
}

#[test]
fn a_thousand_corruptions_never_panic_the_mapped_loader() {
    // The same campaign as above, driven through the zero-copy mapped
    // load path. Rejection may come eagerly at open or lazily on first
    // payload touch; silent divergence and panics are the failures. The
    // only corruption a v4 mapped load may legitimately accept is one
    // confined to the unhashed whole-file footer — and then only as a
    // deep-equal no-op.
    let idx = index();
    let bytes = serialize(&idx).expect("serialize");
    let scratch = scratch_path("mapped-plain");
    let report = mapped_survival_report(&idx, &bytes, 1_200, 0x5eed_0002, &scratch)
        .expect("scratch file writable");
    assert!(report.survived(), "campaign not survived: {report:?}");
    assert_eq!(report.trials, 1_200);
    assert!(report.open_rejections > 900, "{report:?}");
    assert!(
        report.touch_checksum_rejections > 0,
        "no corruption ever reached the lazy-CRC path: {report:?}"
    );
    assert_eq!(report.accepted_divergent, 0, "{report:?}");
}

#[test]
fn mapped_manifest_corruptions_reject_at_open_or_first_touch() {
    // Manifests recompute shard bounds at open, decoding every non-empty
    // payload through the lazily-verified path — so corruption in any
    // record *with blocks* surfaces as an open-time rejection. Shard
    // dictionaries are shared across shards, so a term absent from one
    // shard leaves a zero-block record frame there whose CRC nothing
    // decodes at open; flips landing in those frames are the (small)
    // lazily-caught remainder. Bit-flips in the manifest's unhashed
    // footer remain deep-equal no-ops.
    let idx = index();
    let sharded = ShardedIndex::split(&idx, 3).expect("split");
    let bytes = serialize_sharded(&sharded).expect("serialize sharded");
    let scratch = scratch_path("mapped-shard");
    let report = mapped_sharded_survival_report(&sharded, &bytes, 600, 0x5eed_0003, &scratch)
        .expect("scratch file writable");
    assert!(report.survived(), "campaign not survived: {report:?}");
    assert_eq!(report.trials, 600);
    assert!(report.open_rejections > 500, "{report:?}");
    assert!(
        report.touch_rejections < report.open_rejections / 10,
        "open-time verification should dominate: {report:?}"
    );
    assert_eq!(report.accepted_divergent, 0, "{report:?}");
}

#[test]
fn footer_flip_loads_mapped_but_fails_heap() {
    // The documented asymmetry of the zero-copy trade: the mapped loader
    // never hashes the whole-file footer (it would fault in every page),
    // so a corruption confined to the final 4 bytes loads clean and
    // deep-equal; the heap loader's full-file CRC still rejects it.
    let idx = index();
    let mut bytes = serialize(&idx).expect("serialize");
    let n = bytes.len();
    bytes[n - 1] ^= 0x01;
    assert!(deserialize(&bytes).is_err(), "heap load must reject a footer flip");
    let scratch = scratch_path("footer-flip");
    std::fs::write(&scratch, &bytes).expect("scratch file writable");
    let mapped = iiu_index::storage::map_index(&scratch).expect("mapped load skips the footer");
    for id in 0..mapped.num_terms() as u32 {
        mapped.verify_term(id).expect("content sections are intact");
    }
    assert_eq!(mapped, idx);
    std::fs::remove_file(&scratch).ok();
}

#[test]
fn stalled_simulation_reports_snapshot_instead_of_spinning() {
    // queue_cap = 0 means no unit can ever hand data downstream: the
    // machine wedges immediately. The watchdog must convert that into a
    // typed error carrying a per-unit progress snapshot, bounded by
    // max_cycles so the test is fast.
    let idx = index();
    let cfg = SimConfig { queue_cap: 0, max_cycles: Some(10_000), ..SimConfig::default() };
    let machine = IiuMachine::new(&idx, cfg);
    let t = (0..idx.num_terms() as u32)
        .max_by_key(|&t| idx.term_info(t).df)
        .expect("non-empty index");
    let err = machine
        .run_query(SimQuery::Single(t), 1)
        .expect_err("a zero-capacity pipeline cannot finish");
    match err {
        SimError::Stalled { snapshot } => {
            assert!(snapshot.cycle <= 10_000 + 1);
            assert!(!snapshot.execs.is_empty(), "snapshot must name the stuck execution");
            let exec = &snapshot.execs[0];
            assert!(!exec.cores.is_empty());
            assert!(!exec.streams.is_empty());
            // Diagnostics must render without panicking.
            let rendered = SimError::Stalled { snapshot }.to_string();
            assert!(rendered.contains("stalled at cycle"), "{rendered}");
        }
        other => panic!("expected Stalled, got {other:?}"),
    }

    // The same machine config with sane queues completes fine.
    let ok = IiuMachine::new(&idx, SimConfig::default()).run_query(SimQuery::Single(t), 1);
    assert!(ok.is_ok());
}

#[test]
fn or_with_unknown_term_degrades_on_both_engines() {
    let idx = index();
    let mut sampler = QuerySampler::new(&idx, 11);
    let known = sampler.single_queries(1).remove(0);
    let q = Query::or(Query::term(known), Query::term("zzz_not_a_term"));

    let mut cpu = CpuSearchEngine::new(&idx);
    let mut iiu = IiuSearchEngine::new(&idx);
    let rc = cpu.search(&q, 10).expect("degrades, not errors");
    let ri = iiu.search(&q, 10).expect("degrades, not errors");
    assert!(!rc.hits.is_empty(), "the known side must still serve");
    assert_eq!(rc.hits, ri.hits);
    for r in [&rc, &ri] {
        assert!(r.is_degraded());
        assert_eq!(
            r.degraded,
            vec![Degradation::UnknownTermDropped { term: "zzz_not_a_term".into() }]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// v2 round-trip is lossless — deep equality of the index, and the
    /// positional sidecar (its own little format) round-trips alongside.
    #[test]
    fn prop_v2_roundtrip_with_positions(
        docs in proptest::collection::vec(
            proptest::collection::vec("[a-e]{1,6}", 1..12),
            1..20,
        )
    ) {
        let mut b = IndexBuilder::new(BuildOptions {
            track_positions: true,
            ..BuildOptions::default()
        });
        for words in &docs {
            b.add_document(&words.join(" "));
        }
        let (index, positions) = b.build_with_positions();

        let bytes = serialize(&index).expect("serialize");
        let reloaded = deserialize(&bytes).expect("own output must load");
        prop_assert_eq!(&reloaded, &index);
        reloaded.validate().expect("round-tripped index validates");

        let pos_bytes = positions.to_bytes();
        let pos_reloaded =
            PositionIndex::from_bytes(&pos_bytes).expect("sidecar round-trips");
        prop_assert_eq!(&pos_reloaded, &positions);
    }
}
