//! Equivalence suite for block-max pruned top-k: the pruned execution
//! mode must return *bit-identical* (docID, score) lists to exhaustive
//! scoring for every query shape, every k (including k = 0 and k larger
//! than the result set), on random corpora and on the deterministic
//! sampled workload — and it must actually skip work on skewed lists.

use iiu_baseline::CpuEngine;
use iiu_core::{CpuSearchEngine, IiuSearchEngine, Query, SearchEngine};
use iiu_index::{BuildOptions, IndexBuilder, InvertedIndex, Partitioner};
use iiu_workloads::{CorpusConfig, QuerySampler};
use proptest::prelude::*;

const KS: [usize; 5] = [0, 1, 5, 10, 1000];

/// Builds an index from synthetic docs (term ranks → words) with small
/// fixed blocks so even short lists span several blocks.
fn build_index(docs: &[Vec<u8>]) -> InvertedIndex {
    let mut b = IndexBuilder::new(BuildOptions {
        partitioner: Partitioner::fixed(4),
        ..Default::default()
    });
    for doc in docs {
        let text: Vec<String> = doc.iter().map(|t| format!("t{t}")).collect();
        b.add_document(&text.join(" "));
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random corpora, all three query shapes, all of [`KS`]: pruned and
    /// exhaustive engines return bit-identical hit lists.
    #[test]
    fn prop_pruned_is_bit_identical_to_exhaustive(
        docs in proptest::collection::vec(
            proptest::collection::vec(0u8..8, 1..24),
            1..40,
        ),
    ) {
        let idx = build_index(&docs);
        let mut vocab: Vec<u8> = docs.iter().flatten().copied().collect();
        vocab.sort_unstable();
        vocab.dedup();
        let terms: Vec<String> = vocab.iter().map(|t| format!("t{t}")).collect();

        let mut plain = CpuEngine::new(&idx);
        let mut pruned = CpuEngine::new(&idx).with_pruning(true);
        for k in KS {
            for t in &terms {
                let a = plain.search_single(t, k).expect("known term");
                let b = pruned.search_single(t, k).expect("known term");
                prop_assert_eq!(a.hits, b.hits, "single {} k={}", t, k);
            }
            for pair in terms.windows(2) {
                let (ta, tb) = (&pair[0], &pair[1]);
                let a = plain.search_intersection(ta, tb, k).expect("known");
                let b = pruned.search_intersection(ta, tb, k).expect("known");
                prop_assert_eq!(a.hits, b.hits, "{} AND {} k={}", ta, tb, k);
                let a = plain.search_union(ta, tb, k).expect("known");
                let b = pruned.search_union(ta, tb, k).expect("known");
                prop_assert_eq!(a.hits, b.hits, "{} OR {} k={}", ta, tb, k);
            }
        }
    }
}

/// The deterministic sampled workload (same corpus/sampler pairing the
/// decode suite uses): pruned hits must match exhaustive hits bit for
/// bit at every k, for singles, intersections, and unions.
#[test]
fn pruned_matches_exhaustive_on_sampled_workload() {
    let index = CorpusConfig::tiny(0xC0FFEE).generate().into_default_index();
    let mut sampler = QuerySampler::new(&index, 9);
    let singles = sampler.single_queries(8);
    let pairs = sampler.pair_queries(8);

    let mut plain = CpuEngine::new(&index);
    let mut pruned = CpuEngine::new(&index).with_pruning(true);
    for k in KS {
        for t in &singles {
            let a = plain.search_single(t, k).expect("known term");
            let b = pruned.search_single(t, k).expect("known term");
            assert_eq!(a.hits, b.hits, "single {t} k={k}");
        }
        for (ta, tb) in &pairs {
            let a = plain.search_intersection(ta, tb, k).expect("known");
            let b = pruned.search_intersection(ta, tb, k).expect("known");
            assert_eq!(a.hits, b.hits, "{ta} AND {tb} k={k}");
            let a = plain.search_union(ta, tb, k).expect("known");
            let b = pruned.search_union(ta, tb, k).expect("known");
            assert_eq!(a.hits, b.hits, "{ta} OR {tb} k={k}");
        }
    }
}

/// Codec matrix: the same corpus encoded under every block codec yields
/// hits bit-identical to the bit-packed reference, in both exhaustive and
/// pruned execution — result identity and pruning correctness are
/// codec-independent.
#[test]
fn pruned_matches_exhaustive_under_every_codec() {
    use iiu_index::{Bm25Params, CodecId};

    let reference = CorpusConfig::tiny(0xC0FFEE).generate().into_default_index();
    let mut sampler = QuerySampler::new(&reference, 9);
    let singles = sampler.single_queries(6);
    let pairs = sampler.pair_queries(6);
    let mut ref_plain = CpuEngine::new(&reference);

    for codec in CodecId::ALL {
        let index = CorpusConfig::tiny(0xC0FFEE).generate().into_index_codec(
            Partitioner::default(),
            Bm25Params::default(),
            codec,
        );
        assert_eq!(index.codec(), codec);
        let mut plain = CpuEngine::new(&index);
        let mut pruned = CpuEngine::new(&index).with_pruning(true);
        for k in KS {
            for t in &singles {
                let r = ref_plain.search_single(t, k).expect("known term");
                let a = plain.search_single(t, k).expect("known term");
                let b = pruned.search_single(t, k).expect("known term");
                assert_eq!(a.hits, r.hits, "{codec} single {t} k={k}");
                assert_eq!(b.hits, r.hits, "{codec} pruned single {t} k={k}");
            }
            for (ta, tb) in &pairs {
                let r = ref_plain.search_intersection(ta, tb, k).expect("known");
                let a = plain.search_intersection(ta, tb, k).expect("known");
                let b = pruned.search_intersection(ta, tb, k).expect("known");
                assert_eq!(a.hits, r.hits, "{codec} {ta} AND {tb} k={k}");
                assert_eq!(b.hits, r.hits, "{codec} pruned {ta} AND {tb} k={k}");
                let r = ref_plain.search_union(ta, tb, k).expect("known");
                let a = plain.search_union(ta, tb, k).expect("known");
                let b = pruned.search_union(ta, tb, k).expect("known");
                assert_eq!(a.hits, r.hits, "{codec} {ta} OR {tb} k={k}");
                assert_eq!(b.hits, r.hits, "{codec} pruned {ta} OR {tb} k={k}");
            }
        }
    }
}

/// Source matrix (DESIGN.md §19): the same v4 file loaded heap-side and
/// through the zero-copy mapped loader is one index — deep-equal, and
/// bit-identical in pruned and exhaustive execution across all three
/// query shapes, every k, and every block codec.
#[test]
fn mapped_source_matches_heap_under_every_codec() {
    use iiu_index::{io, storage, Bm25Params, CodecId};

    let reference = CorpusConfig::tiny(0xC0FFEE).generate().into_default_index();
    let mut sampler = QuerySampler::new(&reference, 9);
    let singles = sampler.single_queries(6);
    let pairs = sampler.pair_queries(6);

    for codec in CodecId::ALL {
        let heap = CorpusConfig::tiny(0xC0FFEE).generate().into_index_codec(
            Partitioner::default(),
            Bm25Params::default(),
            codec,
        );
        let bytes = io::serialize(&heap).expect("serialize");
        let path = std::env::temp_dir()
            .join(format!("iiu-topk-src-{}-{codec}", std::process::id()));
        std::fs::write(&path, &bytes).expect("temp file writable");
        let mapped = storage::map_index(&path).expect("mapped load");
        assert!(mapped.source().is_mapped() && !heap.source().is_mapped());
        assert_eq!(mapped, heap, "{codec}: sources must assemble one index");

        let mut h_plain = CpuEngine::new(&heap);
        let mut h_pruned = CpuEngine::new(&heap).with_pruning(true);
        let mut m_plain = CpuEngine::new(&mapped);
        let mut m_pruned = CpuEngine::new(&mapped).with_pruning(true);
        for k in KS {
            for t in &singles {
                let r = h_plain.search_single(t, k).expect("known term");
                let m = m_plain.search_single(t, k).expect("known term");
                assert_eq!(m.hits, r.hits, "{codec} mmap single {t} k={k}");
                let r = h_pruned.search_single(t, k).expect("known term");
                let m = m_pruned.search_single(t, k).expect("known term");
                assert_eq!(m.hits, r.hits, "{codec} mmap pruned single {t} k={k}");
            }
            for (ta, tb) in &pairs {
                let r = h_pruned.search_intersection(ta, tb, k).expect("known");
                let m = m_pruned.search_intersection(ta, tb, k).expect("known");
                assert_eq!(m.hits, r.hits, "{codec} mmap {ta} AND {tb} k={k}");
                let r = h_pruned.search_union(ta, tb, k).expect("known");
                let m = m_pruned.search_union(ta, tb, k).expect("known");
                assert_eq!(m.hits, r.hits, "{codec} mmap {ta} OR {tb} k={k}");
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

/// A pruned [`CpuSearchEngine`] agrees with the exhaustive accelerator
/// engine on primitive queries — the equivalence holds across engine
/// implementations, not just within the baseline crate.
#[test]
fn pruned_cpu_engine_matches_iiu_engine() {
    let index = CorpusConfig::tiny(0xC0FFEE).generate().into_default_index();
    let mut sampler = QuerySampler::new(&index, 11);
    let (a, b) = sampler.pair_queries(1).remove(0);

    let mut cpu = CpuSearchEngine::new(&index).with_pruning(true);
    assert!(cpu.pruning());
    let mut iiu = IiuSearchEngine::new(&index);
    for k in KS {
        for q in [
            Query::term(a.clone()),
            Query::and(Query::term(a.clone()), Query::term(b.clone())),
            Query::or(Query::term(a.clone()), Query::term(b.clone())),
        ] {
            let rc = cpu.search(&q, k).expect("cpu search");
            let ri = iiu.search(&q, k).expect("iiu search");
            assert_eq!(rc.hits, ri.hits, "{q} k={k}");
        }
    }
}

/// On a skewed corpus (one hot block per list region) pruning must not
/// just match — it must *skip*: fewer postings decoded, and nonzero
/// skip tallies, for all three shapes at small k.
#[test]
fn pruning_skips_work_on_skewed_lists() {
    let mut b = IndexBuilder::new(BuildOptions {
        partitioner: Partitioner::fixed(4),
        ..Default::default()
    });
    b.add_document(&"hot ".repeat(40));
    b.add_document(&"cold ".repeat(40));
    b.add_document(&"hot cold ".repeat(30));
    for _ in 0..300 {
        b.add_document("hot cold filler");
    }
    let idx = b.build();

    let mut plain = CpuEngine::new(&idx);
    let mut pruned = CpuEngine::new(&idx).with_pruning(true);

    let a = plain.search_single("hot", 1).expect("known");
    let b1 = pruned.search_single("hot", 1).expect("known");
    assert_eq!(a.hits, b1.hits);
    assert!(b1.counts.blocks_skipped > 0, "single never skipped: {:?}", b1.counts);
    assert!(b1.counts.postings_decoded < a.counts.postings_decoded);

    let a = plain.search_union("hot", "cold", 1).expect("known");
    let b2 = pruned.search_union("hot", "cold", 1).expect("known");
    assert_eq!(a.hits, b2.hits);
    assert!(
        b2.counts.blocks_skipped + b2.counts.postings_skipped > 0,
        "union never skipped: {:?}",
        b2.counts
    );

    let a = plain.search_intersection("hot", "cold", 1).expect("known");
    let b3 = pruned.search_intersection("hot", "cold", 1).expect("known");
    assert_eq!(a.hits, b3.hits);
    assert!(
        b3.counts.blocks_skipped + b3.counts.postings_skipped > 0,
        "intersection never skipped: {:?}",
        b3.counts
    );
}
