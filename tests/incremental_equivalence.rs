//! Incremental-equivalence gate (DESIGN.md §16): an index grown through
//! the crash-safe write path — randomized batches, auto-seals, merges,
//! and a handful of injected crash/reopen events — must be **bit-
//! identical** to the one-shot build over the same corpus, both as a
//! whole (`InvertedIndex` equality) and hit-for-hit across the paper's
//! three query shapes: single term, two-term AND, two-term OR.
//!
//! verify.sh runs this in release over the full 60k-document CC-News-like
//! corpus; plain `cargo test` runs a smaller same-shaped pass.

use std::collections::BTreeMap;
use std::path::PathBuf;

use iiu_core::{CpuSearchEngine, Query, SearchEngine};
use iiu_index::{IncrementalIndex, IncrementalOptions, IngestDoc, InvertedIndex, PostingList};
use iiu_workloads::{CorpusConfig, QuerySampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("iiu-equiv-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// One-shot reference over a document prefix, built by transposing back
/// into posting lists — entirely independent of the incremental code.
fn reference_index(docs: &[IngestDoc], opts: &IncrementalOptions) -> InvertedIndex {
    let mut lists: BTreeMap<String, PostingList> = BTreeMap::new();
    let mut doc_lens = Vec::with_capacity(docs.len());
    for (id, d) in docs.iter().enumerate() {
        doc_lens.push(d.len());
        for (term, tf) in d.terms() {
            lists.entry(term.clone()).or_default().push(id as u32, *tf);
        }
    }
    InvertedIndex::from_lists(
        lists.into_iter().collect(),
        doc_lens,
        opts.partitioner,
        opts.bm25,
    )
    .expect("reference build")
}

/// Recoverable crash-site damage, rotating through the torn-write modes.
fn inject_crash_damage(dir: &std::path::Path, event: usize, rng: &mut StdRng) {
    let wal = dir.join("wal.log");
    match event % 3 {
        0 => {
            // Torn final append.
            let len = std::fs::metadata(&wal).expect("wal meta").len();
            let f = std::fs::OpenOptions::new().write(true).open(&wal).expect("open wal");
            f.set_len(len.saturating_sub(rng.gen_range(1..=64u64))).expect("truncate");
        }
        1 => {
            // Garbage past the last full record.
            let mut bytes = std::fs::read(&wal).expect("read wal");
            for _ in 0..rng.gen_range(1..=32usize) {
                bytes.push(rng.gen_range(0..=u8::MAX));
            }
            std::fs::write(&wal, bytes).expect("garbage tail");
        }
        _ => {
            // A seal that died before its rename.
            std::fs::write(dir.join("seg-000000000777-000000000001.iiu.tmp"), b"torn")
                .expect("stale tmp");
        }
    }
}

#[test]
fn incremental_build_is_bit_identical_to_one_shot() {
    let (n_docs, n_crashes, n_queries) =
        if cfg!(debug_assertions) { (6_000u32, 3usize, 20usize) } else { (60_000, 8, 60) };
    let corpus = CorpusConfig::ccnews_like(n_docs).generate();
    let docs = corpus.to_docs();
    let reference = corpus.into_default_index();

    // Same partitioner and BM25 parameters as `into_default_index`.
    let opts = IncrementalOptions {
        seal_threshold: 4_096,
        merge_threshold: 6,
        ..IncrementalOptions::default()
    };
    let dir = tmp_dir("60k");
    let mut rng = StdRng::seed_from_u64(0x6000_0E01);

    // Crash sites: random cut points in the ingest order.
    let mut cuts: Vec<usize> = (0..n_crashes).map(|_| rng.gen_range(1..docs.len())).collect();
    cuts.sort_unstable();
    cuts.dedup();

    let mut idx = IncrementalIndex::open(&dir, opts).expect("fresh open");
    let mut i = 0usize;
    let mut event = 0usize;
    while i < docs.len() {
        let stop = cuts.iter().find(|&&c| c > i).copied().unwrap_or(docs.len());
        while i < stop {
            let b = rng.gen_range(64..=2_048usize).min(stop - i);
            idx.ingest_batch(&docs[i..i + b]).expect("ingest");
            i += b;
        }
        if stop == docs.len() {
            break;
        }
        // Crash here: drop the handle, damage the directory, recover.
        drop(idx);
        inject_crash_damage(&dir, event, &mut rng);
        event += 1;
        idx = IncrementalIndex::open(&dir, opts).expect("recovery");
        let n_rec = idx.num_docs() as usize;
        assert!(n_rec <= i, "phantom docs after crash {event}");
        // Checkpoint: the surviving prefix is exactly a one-shot build.
        assert_eq!(
            idx.to_one_shot().expect("materialize checkpoint"),
            reference_index(&docs[..n_rec], &opts),
            "checkpoint diverges after crash {event}"
        );
        i = n_rec;
    }
    assert!(event > 0, "the schedule must actually exercise crash recovery");

    // Leave the tail unsealed so the gate covers the segment+buffer union.
    let got = idx.to_one_shot().expect("materialize final");
    assert_eq!(got.num_docs(), u64::from(n_docs));
    assert_eq!(got, reference, "incrementally built index diverges from one-shot");

    // Hit-for-hit equality across the three gated query shapes, with
    // TREC-like df-biased terms sampled from the reference vocabulary.
    let mut eng_got = CpuSearchEngine::new(&got);
    let mut eng_ref = CpuSearchEngine::new(&reference);
    let mut check = |text: &str| {
        let q = Query::parse(text).expect("query parses");
        let a = eng_got.search(&q, 10).expect("search incremental");
        let b = eng_ref.search(&q, 10).expect("search one-shot");
        assert_eq!(a.hits, b.hits, "hits diverge on {text:?}");
        assert_eq!(a.candidates, b.candidates, "candidates diverge on {text:?}");
    };
    let mut sampler = QuerySampler::new(&reference, 0xE0_0001);
    for t in sampler.single_queries(n_queries) {
        check(&t);
    }
    for (a, b) in sampler.pair_queries(n_queries) {
        check(&format!("{a} AND {b}"));
        check(&format!("{a} OR {b}"));
    }
    std::fs::remove_dir_all(&dir).ok();
}
