//! Fault-injected soak of the serving layer.
//!
//! The acceptance bar for the resilient serving layer: 10 000 queries
//! offered open-loop at 2× the measured sustainable rate, with 1% of
//! device attempts stalled and a deterministic all-fail burst in the
//! middle, must complete with
//!
//! * zero panics reaching any caller or killing any worker,
//! * every query resolved as exactly one of {clean hits, degraded hits,
//!   typed rejection} — accounting closes exactly, and
//! * the circuit breaker observed to trip during the burst and recover
//!   after it.
//!
//! The sustainable rate is measured on the same corpus and worker pool
//! immediately before the soak, so the 2× overload factor tracks the
//! machine the test runs on instead of a hard-coded qps number.
//!
//! The soak offers Zipf-skewed traffic and serves its CPU fallbacks
//! through the hybrid scheduler over a 2-shard pool, so overload, faults,
//! and breaker churn all land on the same inter/intra-query routing the
//! production path uses.

use std::sync::Arc;
use std::time::{Duration, Instant};

use iiu_core::Query;
use iiu_index::InvertedIndex;
use iiu_serve::{
    BreakerConfig, FaultPlan, QueryService, RetryPolicy, SchedulerConfig, ServeConfig,
};
use iiu_workloads::{traffic, CorpusConfig, TrafficConfig};

const N_QUERIES: usize = 10_000;
const STALL_RATE: f64 = 0.01;
/// Queries (by admission sequence) whose device attempts all fail,
/// forcing the breaker to trip; placed mid-stream so recovery is also
/// observable. Admission sequence numbers count only admitted queries, so
/// the window is reached as long as ~2 000 queries survive shedding —
/// well under the answered-fraction floor asserted below.
const BURST: (u64, u64) = (2_000, 2_120);

fn soak_index() -> InvertedIndex {
    CorpusConfig { n_docs: 1_500, n_terms: 150, ..CorpusConfig::tiny(0x50AB) }
        .generate()
        .into_default_index()
}

fn base_config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_capacity: 256,
        default_deadline: Duration::from_secs(5),
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(1),
            jitter: 0.5,
        },
        breaker: BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(20),
            probe_successes: 2,
        },
        ..ServeConfig::default()
    }
}

/// Measures the pool's clean throughput: a batch of queries submitted all
/// at once and drained, so every worker stays busy for the whole probe.
fn measure_sustainable_qps(index: &Arc<InvertedIndex>, workers: usize) -> f64 {
    let n_probe = 400usize;
    let cfg = ServeConfig { queue_capacity: n_probe + workers, ..base_config(workers) };
    let svc = QueryService::start(Arc::clone(index), cfg);
    let stream = traffic::open_loop(
        index,
        &TrafficConfig {
            rate_qps: 1e9, // all arrivals at t≈0: measures service capacity
            n_queries: n_probe,
            unknown_term_rate: 0.0,
            seed: 0xCA1,
            ..TrafficConfig::default()
        },
    );
    let started = Instant::now();
    let pending: Vec<_> = stream
        .iter()
        .map(|tq| {
            let q = Query::parse(&tq.text).expect("generated query parses");
            svc.submit(q, 10).expect("probe admission within capacity")
        })
        .collect();
    let answered = pending.into_iter().map(|p| p.wait()).filter(Result::is_ok).count();
    let qps = answered as f64 / started.elapsed().as_secs_f64();
    assert!(answered > 0, "capacity probe answered nothing");
    qps.max(50.0)
}

/// Keeps intentional injected panics from spraying backtraces over the
/// test output; real panics still print.
fn silence_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.payload().downcast_ref::<String>().map(String::as_str).unwrap_or("");
        if !msg.contains("injected panic fault") {
            default_hook(info);
        }
    }));
}

#[test]
fn soak_overload_with_faults_and_breaker_recovery() {
    silence_injected_panics();
    let workers = 4;
    let index = Arc::new(soak_index());
    let sustainable = measure_sustainable_qps(&index, workers);
    let offered = 2.0 * sustainable;

    let stream = traffic::open_loop(
        &index,
        &TrafficConfig {
            rate_qps: offered,
            n_queries: N_QUERIES,
            unknown_term_rate: 0.02,
            seed: 0x50A_u64 ^ 0x5eed,
            // Head-heavy popularity, as production traffic would be.
            zipf_skew: 1.0,
            ..TrafficConfig::default()
        },
    );

    // Median longest-list size over the offered queries: a heavy
    // threshold that guarantees the hybrid router exercises both modes
    // on this traffic (the sampler is df-biased, so a dictionary-wide
    // median would classify everything as heavy).
    let mut maxes: Vec<u64> = stream
        .iter()
        .map(|tq| {
            let q = Query::parse(&tq.text).expect("generated query parses");
            iiu_core::estimate_query_cost(&index, &q.terms()).max_list_postings
        })
        .collect();
    maxes.sort_unstable();
    let cfg = ServeConfig {
        fault: FaultPlan {
            stall_rate: STALL_RATE,
            burst: Some(BURST),
            panic_burst: Some((BURST.0, BURST.0 + 10)),
            seed: 0xFA_017,
        },
        shards: 2,
        scheduler: SchedulerConfig {
            hybrid: true,
            heavy_df_threshold: maxes[maxes.len() / 2],
            ..SchedulerConfig::default()
        },
        ..base_config(workers)
    };
    let mut svc = QueryService::start(Arc::clone(&index), cfg);

    let started = Instant::now();
    let mut pending = Vec::with_capacity(N_QUERIES);
    let mut admission_sheds = 0u64;
    for tq in &stream {
        if let Some(wait) = tq.at.checked_sub(started.elapsed()) {
            std::thread::sleep(wait);
        }
        let q = Query::parse(&tq.text).expect("generated query parses");
        match svc.submit(q, 10) {
            Ok(p) => pending.push(p),
            Err(_) => admission_sheds += 1,
        }
    }

    let mut answered = 0u64;
    let mut rejected = 0u64;
    for p in pending {
        match p.wait() {
            Ok(resp) => {
                answered += 1;
                // Hits stay well-formed even under overload.
                assert!(resp.hits.len() <= 10);
            }
            Err(_) => rejected += 1,
        }
    }
    svc.shutdown();
    let h = svc.health();

    // 1. Zero unisolated panics: every worker survived to drain the queue,
    //    and no caller saw a panic propagate. (h.panicked counts *isolated*
    //    panics on either path — device attempt or CPU fallback — which
    //    the panic_burst makes nonzero on purpose.)
    assert!(h.panicked >= 1, "panic injection never fired: {h}");

    // 2. Exact accounting: every submitted query resolved exactly once.
    assert_eq!(h.submitted, h.answered() + h.rejected_total(), "accounting violated: {h}");
    assert_eq!(h.submitted, N_QUERIES as u64, "admission lost queries: {h}");
    assert_eq!(answered, h.answered(), "caller-side vs stats answered mismatch");
    assert_eq!(
        rejected + admission_sheds,
        h.rejected_total(),
        "caller-side vs stats rejected mismatch"
    );

    // 3. The fault burst tripped the breaker and it recovered afterwards.
    assert!(h.breaker_trips >= 1, "breaker never tripped: {h}");
    assert!(h.breaker_recoveries >= 1, "breaker never recovered: {h}");

    // 4. The injected stalls exercised the retry path, and every CPU
    //    fallback went through the hybrid router exactly once.
    assert!(h.retries >= 1, "no retries under {STALL_RATE} stall rate: {h}");
    assert!(h.cpu_fallbacks >= 1, "burst produced no CPU fallbacks: {h}");
    assert_eq!(
        h.sched_inline + h.sched_fanout,
        h.cpu_fallbacks,
        "hybrid routing accounting: {h}"
    );

    // 5. At 2× the sustainable rate the bounded queue must shed rather
    //    than absorb unbounded latency — while still answering a solid
    //    share of the offered load (an open loop at 2× capacity cannot
    //    answer much more than half).
    assert!(h.shed_overload >= 1, "no load shedding at 2x capacity: {h}");
    assert!(
        h.answered() > (N_QUERIES as u64) / 3,
        "answered too few even for a 2x overload: {h}"
    );

    println!("soak: sustainable {sustainable:.0} qps, offered {offered:.0} qps\n{h}");
}
