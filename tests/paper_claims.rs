//! Qualitative checks of the paper's headline claims at test scale. These
//! assert *shapes* (who wins, what saturates, what is flat), not absolute
//! factors — the full factors are measured by the `iiu-bench` harness at
//! experiment scale (see EXPERIMENTS.md).

use iiu_baseline::{CpuEngine, PhaseBreakdown};
use iiu_sim::{HostModel, IiuMachine, PowerModel, SimConfig, SimQuery};
use iiu_workloads::{CorpusConfig, QuerySampler};

fn index() -> iiu_index::InvertedIndex {
    CorpusConfig { n_docs: 20_000, n_terms: 4_000, ..CorpusConfig::ccnews_like(20_000) }
        .generate()
        .into_default_index()
}

fn sample_pairs(index: &iiu_index::InvertedIndex, n: usize) -> Vec<(u32, u32)> {
    let mut sampler = QuerySampler::with_bias(index, 99, 0.5, 200);
    sampler
        .pair_queries(n)
        .iter()
        .map(|(a, b)| (index.term_id(a).unwrap(), index.term_id(b).unwrap()))
        .collect()
}

fn sample_singles(index: &iiu_index::InvertedIndex, n: usize) -> Vec<u32> {
    let mut sampler = QuerySampler::with_bias(index, 98, 0.5, 600);
    sampler.single_queries(n).iter().map(|t| index.term_id(t).unwrap()).collect()
}

/// The term with the longest posting list (for scaling checks that need a
/// list spanning many blocks).
fn head_term(index: &iiu_index::InvertedIndex) -> u32 {
    (0..index.num_terms() as u32)
        .max_by_key(|&t| index.term_info(t).df)
        .expect("non-empty vocabulary")
}

/// §1 / Fig. 1: "decompression accounts for over 40% of the total query
/// response time over all three query types" in the baseline.
#[test]
fn claim_decompression_dominates_baseline() {
    let index = index();
    let mut engine = CpuEngine::new(&index);
    let singles = sample_singles(&index, 10);
    let pairs = sample_pairs(&index, 10);

    let check = |label: &str, phases: Vec<PhaseBreakdown>| {
        let mut total = PhaseBreakdown::default();
        for p in &phases {
            total.merge(p);
        }
        assert!(
            total.decompress_fraction() > 0.35,
            "{label}: decompression fraction {:.2} too low",
            total.decompress_fraction()
        );
    };
    check(
        "single",
        singles
            .iter()
            .map(|&t| engine.search_single(&index.term_info(t).term, 10).unwrap().phases)
            .collect(),
    );
    check(
        "union",
        pairs
            .iter()
            .map(|&(a, b)| {
                engine
                    .search_union(&index.term_info(a).term, &index.term_info(b).term, 10)
                    .unwrap()
                    .phases
            })
            .collect(),
    );
}

/// §5.2: dynamic partitioning beats Lucene's static scheme on compression.
#[test]
fn claim_dynamic_partitioning_compresses_better() {
    let corpus = CorpusConfig::ccnews_like(20_000).generate();
    let dynamic =
        corpus.clone().into_index(iiu_index::Partitioner::dynamic(256), Default::default());
    let fixed = corpus.into_index(iiu_index::Partitioner::fixed(128), Default::default());
    let rd = dynamic.size_stats().compression_ratio();
    let rf = fixed.size_stats().compression_ratio();
    assert!(rd > rf * 1.15, "dynamic {rd:.2} should clearly beat static {rf:.2}");
}

/// Fig. 15 direction: IIU-8 latency beats the baseline on every query
/// type, and intersection benefits most.
#[test]
fn claim_iiu_latency_wins_and_intersection_wins_most() {
    let index = index();
    let mut engine = CpuEngine::new(&index);
    let machine = IiuMachine::new(&index, SimConfig::default());
    let host = HostModel::default();
    let singles = sample_singles(&index, 5);
    let pairs = sample_pairs(&index, 5);

    let mut speedups = std::collections::HashMap::new();
    let mut record = |label: &str, lucene_ns: f64, run: &iiu_sim::QueryRun| {
        let iiu_ns = host.query_latency_ns(run.cycles, 1.0, run.stats.candidates);
        let entry: &mut (f64, f64) = speedups.entry(label.to_string()).or_insert((0.0, 0.0));
        entry.0 += lucene_ns;
        entry.1 += iiu_ns;
    };
    for &t in &singles {
        let name = &index.term_info(t).term;
        record(
            "single",
            engine.search_single(name, 10).unwrap().latency_ns(),
            &machine.run_query(SimQuery::Single(t), 8).expect("sim completes"),
        );
    }
    for &(a, b) in &pairs {
        let (na, nb) = (&index.term_info(a).term, &index.term_info(b).term);
        record(
            "intersection",
            engine.search_intersection(na, nb, 10).unwrap().latency_ns(),
            &machine.run_query(SimQuery::Intersect(a, b), 8).expect("sim completes"),
        );
        record(
            "union",
            engine.search_union(na, nb, 10).unwrap().latency_ns(),
            &machine.run_query(SimQuery::Union(a, b), 8).expect("sim completes"),
        );
    }
    let speedup = |label: &str| speedups[label].0 / speedups[label].1;
    for label in ["single", "intersection", "union"] {
        assert!(speedup(label) > 1.5, "{label} speedup {:.2} too small", speedup(label));
    }
    assert!(
        speedup("intersection") > speedup("union"),
        "intersection ({:.1}) should beat union ({:.1}) — the paper's ordering",
        speedup("intersection"),
        speedup("union")
    );
}

/// §5.3: union latency does not improve with more cores (merge-unit
/// bottleneck); single-term does.
#[test]
fn claim_union_flat_single_scales() {
    let index = index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    let (a, b) = sample_pairs(&index, 1)[0];
    let u1 = machine.run_query(SimQuery::Union(a, b), 1).expect("sim completes");
    let u8_ = machine.run_query(SimQuery::Union(a, b), 8).expect("sim completes");
    assert_eq!(u1.cycles, u8_.cycles, "union must be flat in core count");

    let t = head_term(&index);
    let s1 = machine.run_query(SimQuery::Single(t), 1).expect("sim completes");
    let s8 = machine.run_query(SimQuery::Single(t), 8).expect("sim completes");
    assert!(
        (s8.cycles as f64) < 0.7 * s1.cycles as f64,
        "single-term must scale with cores ({} vs {})",
        s8.cycles,
        s1.cycles
    );
}

/// §5.4: the accelerator draws two orders of magnitude less power than the
/// CPU, and per-query energy is dominated by the host side of IIU.
#[test]
fn claim_power_and_energy() {
    let p = PowerModel::default();
    assert!(p.cpu_tdp_w / p.iiu_w > 100.0);
    // A 100 us query with 50k candidates: host top-k energy dwarfs IIU's.
    let host = HostModel::default();
    let iiu_e = p.iiu_energy_j(100_000.0);
    let host_e = p.cpu_core_energy_j(host.topk_ns(50_000));
    assert!(host_e > iiu_e, "host {host_e} should exceed accelerator {iiu_e}");
}

/// §5.3 / Fig. 18: with inter-query parallelism the non-intersection query
/// types push much closer to the bandwidth ceiling than intersection.
#[test]
fn claim_intersection_is_not_bandwidth_bound() {
    let index = index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    let singles: Vec<SimQuery> =
        sample_singles(&index, 16).into_iter().map(SimQuery::Single).collect();
    let isects: Vec<SimQuery> =
        sample_pairs(&index, 16).into_iter().map(|(a, b)| SimQuery::Intersect(a, b)).collect();
    let bw_single =
        machine.run_batch(&singles, 8).expect("sim completes").mem.bandwidth_utilization;
    let bw_isect =
        machine.run_batch(&isects, 8).expect("sim completes").mem.bandwidth_utilization;
    assert!(
        bw_single > 2.0 * bw_isect,
        "single-term ({bw_single:.2}) should stress bandwidth far more than \
         intersection ({bw_isect:.2})"
    );
}
