//! `iiu` — command-line front end of the reproduction.
//!
//! ```text
//! iiu gen     <index-file> [--docs N] [--preset ccnews|clueweb] [--seed S] [--shards N]
//! iiu build   <corpus.txt> <index-file> [--max-size N] [--positions yes]
//! iiu ingest  <index-dir> [--docs N] [--batch B] [--preset ccnews|clueweb] [--seed S]
//!             [--seal-every N] [--merge-every N] [--file corpus.txt] [--seal yes]
//! iiu stats   <index-file|index-dir>
//! iiu inspect <index-file|index-dir> [--fault-rate R] [--trials N] [--seed S]
//! iiu search  <index-file> "<query>" [--k N] [--engine cpu|iiu|both] [--cores N]
//!             [--shards N]
//! iiu serve-bench <index-file> [--workers N] [--rate QPS] [--queries N]
//!                 [--deadline-ms MS] [--fault-rate R] [--seed S] [--shards N]
//!                 [--shard-fault-rate R] [--shard-stall-rate R]
//!                 [--shard-stall-ms MS] [--fail-closed yes]
//! ```
//!
//! `gen` writes an index over a synthetic Zipfian corpus; `build` indexes a
//! text file (one document per line), optionally with a positional sidecar
//! (`<index-file>.pos`) that enables quoted phrase queries; `ingest` streams
//! documents into a crash-safe incremental index *directory* (WAL + sealed
//! segments) that every other command accepts wherever it accepts an index
//! file; `inspect`
//! verifies checksums and structural invariants, optionally fuzzing the
//! file with deterministic corruptions; `search` runs a boolean query on
//! the baseline engine, the simulated accelerator, or both, auto-loading
//! the sidecar when present; `serve-bench` drives the resilient serving
//! layer with a Poisson open-loop query stream and reports tail latency,
//! shed rate and circuit-breaker activity.

use std::process::ExitCode;

use iiu_core::{
    CpuSearchEngine, IiuSearchEngine, Query, SearchEngine, SearchResponse, ShardedSearchEngine,
};
use iiu_index::io::{
    deserialize, deserialize_sharded, is_sharded, peek_codec, scan_sharded, serialize,
    serialize_sharded, ShardBodyStatus, MAGIC, MAGIC_V1, MAGIC_V2, MAGIC_V3,
};
use iiu_index::shard::ShardedIndex;
use iiu_index::{
    corrupt, Bm25Params, BuildOptions, CodecId, IncrementalIndex, IncrementalOptions,
    IndexBuilder, IndexError, IngestDoc, InvertedIndex, Partitioner, PositionIndex,
};
use iiu_serve::{FaultPlan, QueryService, ServeConfig};
use iiu_workloads::{CorpusConfig, TrafficConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("search") => cmd_search(&args[1..]),
        Some("serve-bench") => cmd_serve_bench(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?} (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "iiu — reproduction of 'IIU: Specialized Architecture for Inverted Index Search'\n\
         \n\
         USAGE:\n\
         \x20 iiu gen     <index-file> [--docs N] [--preset ccnews|clueweb] [--seed S]\n\
         \x20             [--shards N] [--codec C] [--stream yes] [--terms N] [--max-df F]\n\
         \x20 iiu build   <corpus.txt> <index-file> [--max-size N] [--positions yes]\n\
         \x20             [--codec C]\n\
         \x20 iiu ingest  <index-dir> [--docs N] [--batch B] [--preset ccnews|clueweb]\n\
         \x20             [--seed S] [--seal-every N] [--merge-every N] [--file corpus.txt]\n\
         \x20             [--seal yes] [--codec C]\n\
         \x20 iiu stats   <index-file|index-dir> [--mmap yes]\n\
         \x20 iiu inspect <index-file|index-dir> [--fault-rate R] [--trials N] [--seed S]\n\
         \x20             [--mmap yes]\n\
         \x20 iiu search  <index-file> \"<query>\" [--k N] [--engine cpu|iiu|both] [--cores N]\n\
         \x20             [--pruned yes] [--shards N] [--mmap yes]\n\
         \x20 iiu serve-bench <index-file> [--workers N] [--rate QPS] [--queries N]\n\
         \x20                 [--deadline-ms MS] [--fault-rate R] [--seed S] [--unknown-rate R]\n\
         \x20                 [--pruned yes] [--shards N] [--shard-fault-rate R]\n\
         \x20                 [--shard-stall-rate R] [--shard-stall-ms MS] [--fail-closed yes]\n\
         \x20                 [--no-device yes] [--hybrid yes] [--zipf S]\n\
         \n\
         --codec C selects the posting-list block codec: bitpack (default,\n\
         the paper's word-window format), stream-vbyte, or simdbp128\n\
         (SIMD vertical bit-packing, AVX2/SSE2 with scalar fallback).\n\
         Search results are bit-identical across codecs; only decode\n\
         speed and size change. ingest without --codec keeps sealing with\n\
         the codec the directory's existing segments use, and inspect\n\
         reports each index's codec id and achieved bits per posting.\n\
         \n\
         gen --stream yes streams the file to disk term by term (peak\n\
         memory independent of corpus size — the ≥1M-doc path), with\n\
         byte-identical output to the in-memory writer; --terms/--max-df\n\
         override the preset's vocabulary size and head document\n\
         frequency.\n\
         \n\
         --mmap yes memory-maps the index file instead of materializing it\n\
         on the heap: posting bytes are served zero-copy out of the OS page\n\
         cache, per-record checksums are verified lazily on first touch, and\n\
         hits are bit-identical to the heap load. stats/inspect report the\n\
         source (heap vs mmap), mapped bytes and a residency estimate —\n\
         per shard for manifests; inspect additionally cross-checks that the\n\
         mapped load equals the heap load. serve-bench accepts it too.\n\
         \n\
         --pruned yes runs the CPU engine with block-max pruned top-k:\n\
         whole blocks whose score upper bound cannot reach the current\n\
         top-k threshold are skipped. Results are bit-identical to\n\
         exhaustive scoring; only the work done changes.\n\
         \n\
         --shards N splits the document space round-robin across N shards\n\
         and fans each query out across a shard worker pool (intra-query\n\
         parallelism); pruned shards exchange a shared top-k threshold.\n\
         Hits stay bit-identical to the unsharded engine. In `gen` the flag\n\
         writes a sharded manifest instead of a plain index (every other\n\
         command loads either format; `inspect` reports per-shard balance\n\
         and bounds coverage).\n\
         \n\
         serve-bench submits a Poisson open-loop query stream to the\n\
         resilient serving layer (deadlines, load shedding, retry, CPU\n\
         fallback) and reports p50/p99 latency, shed rate, and circuit-\n\
         breaker activity. --fault-rate injects that fraction of device\n\
         stalls to exercise the recovery paths. With --shards N, \n\
         --shard-fault-rate panics that fraction of shard executions and\n\
         --shard-stall-rate stalls that fraction for --shard-stall-ms,\n\
         exercising shard supervision: partial answers are labeled, sick\n\
         shards are quarantined and probed half-open, and per-shard health\n\
         is reported. --fail-closed yes errors on partial coverage instead\n\
         (rescued by an unsharded retry); --no-device yes sabotages every\n\
         device attempt so the whole stream exercises the CPU path.\n\
         --hybrid yes enables per-query parallelism routing: queries whose\n\
         longest postings list is below the heavy-df threshold answer\n\
         inline (inter-query), the rest fan out (intra-query); hits are\n\
         bit-identical either way. --zipf S skews query popularity with a\n\
         Zipf(S) draw over a fixed pool, modeling head-heavy traffic.\n\
         \n\
         ingest streams documents into a crash-safe incremental index\n\
         DIRECTORY: every batch is appended to a CRC-framed write-ahead log\n\
         and fsynced before it is acknowledged, and the in-memory buffer is\n\
         sealed into immutable segment files (atomic tmp+fsync+rename) every\n\
         --seal-every docs. A crash at any byte loses nothing acknowledged:\n\
         the next open replays the WAL and truncates any torn tail. Every\n\
         command that takes an index file also accepts such a directory\n\
         (search, stats, serve-bench load it as the equivalent one-shot\n\
         index; inspect prints the recovery report, segment layout and WAL\n\
         state instead of the fault campaign).\n\
         \n\
         inspect verifies the file's section checksums and the decoded\n\
         index's structural invariants. With --fault-rate R (fraction of\n\
         bytes corrupted per trial, e.g. 0.0001) it additionally runs a\n\
         deterministic fault-injection campaign over the file and prints a\n\
         survival report; any panic or silently accepted corruption fails\n\
         the command.\n\
         \n\
         Query syntax: terms, AND, OR, parentheses, and quoted phrases — e.g.\n\
         \x20 \"business AND (cameo OR news)\" or '\"new york\" AND times' (phrases need\n\
         \x20 an index built with --positions yes)."
    );
}

/// Parsed `--flag value` options plus positionals.
struct Args<'a> {
    positional: Vec<&'a str>,
    flags: Vec<(&'a str, &'a str)>,
}

impl<'a> Args<'a> {
    fn flag(&self, name: &str) -> Option<&'a str> {
        self.flags.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }
}

fn split_args(args: &[String]) -> Args<'_> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if i + 1 < args.len() {
                flags.push((name, args[i + 1].as_str()));
                i += 2;
            } else {
                i += 1;
            }
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    Args { positional, flags }
}

fn parse_num<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("invalid {what}: {v:?}"))
}

fn parse_codec(v: &str) -> Result<CodecId, String> {
    CodecId::parse(v)
        .ok_or_else(|| format!("unknown codec {v:?} (try bitpack, stream-vbyte, simdbp128)"))
}

/// Detects the codec an incremental directory's sealed segments use by
/// peeking the first segment header. Directories without segments (fresh
/// or WAL-only) get the default codec; unreadable segments are left for
/// the real open path to diagnose.
fn dir_codec(path: &std::path::Path) -> CodecId {
    let Ok(entries) = std::fs::read_dir(path) else {
        return CodecId::default();
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if iiu_index::segment::parse_segment_name(name).is_none() {
            continue;
        }
        if let Ok(bytes) = std::fs::read(entry.path()) {
            if let Ok(codec) = peek_codec(&bytes) {
                return codec;
            }
        }
    }
    CodecId::default()
}

/// Loads any index shape as a plain [`InvertedIndex`]. With `mmap`,
/// plain files are memory-mapped (zero-copy posting bytes, lazy record
/// CRCs) and incremental directories map their sealed segments; shard
/// manifests are mapped and then merged, which necessarily materializes
/// the merged copy on the heap — commands that can serve shards directly
/// use [`load_cli_index`] instead to keep manifests zero-copy.
fn load_index_mode(path: &str, mmap: bool) -> Result<InvertedIndex, String> {
    match load_cli_index(path, mmap)? {
        CliIndex::Plain(index) => Ok(*index),
        CliIndex::Sharded(sharded) => {
            // A shard manifest merges back into the exact unsharded index,
            // so every command accepts either file format.
            sharded.merge().map_err(|e| format!("cannot merge shards of {path}: {e}"))
        }
    }
}

/// An index loaded by the CLI, preserving manifest shape so commands can
/// serve mapped shards without materializing a merged copy. Both
/// variants are boxed/shared: the enum travels by value through every
/// command's load path.
enum CliIndex {
    Plain(Box<InvertedIndex>),
    Sharded(std::sync::Arc<ShardedIndex>),
}

fn load_cli_index(path: &str, mmap: bool) -> Result<CliIndex, String> {
    if std::path::Path::new(path).is_dir() {
        // An incremental index directory: run crash recovery (WAL replay,
        // torn-tail truncation) and materialize the equivalent one-shot
        // index, so every command transparently accepts either form. The
        // directory's own segments decide the codec — recovery refuses
        // segments sealed under different options. --mmap maps the sealed
        // segments during recovery; the materialized one-shot equivalent
        // is heap-resident either way.
        let opts = IncrementalOptions {
            codec: dir_codec(path.as_ref()),
            mmap_segments: mmap,
            ..IncrementalOptions::default()
        };
        let inc = IncrementalIndex::open(path.as_ref(), opts)
            .map_err(|e| format!("cannot recover incremental index {path}: {e}"))?;
        return inc
            .to_one_shot()
            .map(|idx| CliIndex::Plain(Box::new(idx)))
            .map_err(|e| format!("cannot materialize incremental index {path}: {e}"));
    }
    if mmap {
        return match iiu_index::storage::open(path.as_ref())
            .map_err(|e| format!("cannot map {path}: {e}"))?
        {
            iiu_index::MappedIndex::Plain(index) => Ok(CliIndex::Plain(Box::new(index))),
            iiu_index::MappedIndex::Sharded(sharded) => {
                Ok(CliIndex::Sharded(std::sync::Arc::new(sharded)))
            }
        };
    }
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if is_sharded(&bytes) {
        let sharded =
            deserialize_sharded(&bytes).map_err(|e| format!("cannot parse {path}: {e}"))?;
        return Ok(CliIndex::Sharded(std::sync::Arc::new(sharded)));
    }
    deserialize(&bytes)
        .map(|idx| CliIndex::Plain(Box::new(idx)))
        .map_err(|e| format!("cannot parse {path}: {e}"))
}

/// One `source:` report line: heap vs mmap, and for mapped indexes the
/// mapped span plus a `mincore(2)` residency estimate.
fn source_line(index: &InvertedIndex) -> String {
    let src = index.source();
    if !src.is_mapped() {
        return "heap (owned allocations)".into();
    }
    let mapped = src.mapped_bytes();
    match src.resident_bytes() {
        Some(resident) => format!(
            "mmap ({} KiB mapped, ~{} KiB resident)",
            mapped / 1024,
            resident / 1024
        ),
        None => format!("mmap ({} KiB mapped, residency unavailable)", mapped / 1024),
    }
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let parsed = split_args(args);
    let flag = |n: &str| parsed.flag(n);
    let [out] = parsed.positional[..] else {
        return Err("usage: iiu gen <index-file> [--docs N] [--preset ccnews|clueweb]".into());
    };
    let docs: u32 = parse_num(flag("docs").unwrap_or("50000"), "--docs")?;
    let seed: u64 = parse_num(flag("seed").unwrap_or("42"), "--seed")?;
    let shards: usize = parse_num(flag("shards").unwrap_or("1"), "--shards")?;
    let codec = parse_codec(flag("codec").unwrap_or("bitpack"))?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let mut cfg = match flag("preset").unwrap_or("ccnews") {
        "ccnews" => CorpusConfig::ccnews_like(docs),
        "clueweb" => CorpusConfig::clueweb_like(docs),
        other => return Err(format!("unknown preset {other:?}")),
    };
    cfg.seed = seed;
    if let Some(n) = flag("terms") {
        cfg.n_terms = parse_num(n, "--terms")?;
    }
    if let Some(f) = flag("max-df") {
        cfg.max_df_fraction =
            f.parse::<f64>().map_err(|e| format!("--max-df must be a fraction: {e}"))?;
    }
    if flag("stream").is_some() {
        // Streamed generation writes the v4 file term by term with peak
        // memory independent of the posting count — the ≥1M-doc path.
        // Sharded output needs the whole index in memory to split, so the
        // two flags are mutually exclusive.
        if shards > 1 {
            return Err("--stream writes a plain (unsharded) index; drop --shards".into());
        }
        let file = std::fs::File::create(out).map_err(|e| format!("cannot write {out}: {e}"))?;
        let sink = std::io::BufWriter::new(file);
        let (_, stats) = cfg
            .generate_streamed(sink, Partitioner::default(), Bm25Params::default(), codec)
            .map_err(|e| format!("cannot stream index: {e}"))?;
        let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
        println!(
            "streamed {} docs, {} terms, {} postings",
            stats.docs, stats.terms, stats.postings
        );
        println!("wrote {out}: {} KiB, codec {}", bytes / 1024, codec.name());
        return Ok(());
    }
    let corpus = cfg.generate();
    println!(
        "generated {} docs, {} terms, {} postings",
        docs,
        corpus.lists.len(),
        corpus.total_postings()
    );
    let index = corpus.into_index_codec(Partitioner::default(), Bm25Params::default(), codec);
    let bytes = if shards > 1 {
        let sharded = ShardedIndex::split(&index, shards)
            .map_err(|e| format!("cannot shard index: {e}"))?;
        println!("split into {shards} round-robin document shards");
        serialize_sharded(&sharded).map_err(|e| format!("cannot serialize index: {e}"))?
    } else {
        serialize(&index).map_err(|e| format!("cannot serialize index: {e}"))?
    };
    std::fs::write(out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
    let s = index.size_stats();
    println!(
        "wrote {out}: {} KiB, codec {}, {:.2} bits/posting, compression {:.2}x",
        bytes.len() / 1024,
        codec.name(),
        s.bits_per_posting(),
        s.compression_ratio()
    );
    Ok(())
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let parsed = split_args(args);
    let flag = |n: &str| parsed.flag(n);
    let [input, out] = parsed.positional[..] else {
        return Err("usage: iiu build <corpus.txt> <index-file> [--max-size N]".into());
    };
    let max_size: usize = parse_num(flag("max-size").unwrap_or("256"), "--max-size")?;
    let track_positions = flag("positions").is_some();
    let codec = parse_codec(flag("codec").unwrap_or("bitpack"))?;
    let text =
        std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let mut builder = IndexBuilder::new(BuildOptions {
        partitioner: Partitioner::dynamic(max_size),
        track_positions,
        codec,
        ..Default::default()
    });
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        builder.add_document(line);
    }
    println!("indexed {} documents, {} terms", builder.num_docs(), builder.num_terms());
    let index = if track_positions {
        let (index, positions) = builder.build_with_positions();
        let sidecar = format!("{out}.pos");
        std::fs::write(&sidecar, positions.to_bytes())
            .map_err(|e| format!("cannot write {sidecar}: {e}"))?;
        println!("wrote {sidecar} ({} terms with positions)", positions.num_terms());
        index
    } else {
        builder.build()
    };
    let bytes = serialize(&index).map_err(|e| format!("cannot serialize index: {e}"))?;
    std::fs::write(out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
    let s = index.size_stats();
    println!(
        "wrote {out}: {} KiB, codec {}, {:.2} bits/posting, compression {:.2}x",
        bytes.len() / 1024,
        codec.name(),
        s.bits_per_posting(),
        s.compression_ratio()
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let parsed = split_args(args);
    let [path] = parsed.positional[..] else {
        return Err("usage: iiu stats <index-file> [--mmap yes]".into());
    };
    let mmap = parsed.flag("mmap").is_some();
    if let CliIndex::Sharded(sharded) = load_cli_index(path, mmap)? {
        // Manifests report per shard: a mapped manifest serves each shard
        // straight out of its byte span in the file, so the mapped/resident
        // split is per-shard state worth seeing.
        let mut s = iiu_index::IndexSizeStats::default();
        for shard in sharded.shards() {
            s.merge(&shard.size_stats());
        }
        println!("documents:        {} across {} shards", sharded.num_docs(), sharded.num_shards());
        println!("terms:            {}", sharded.shard(0).num_terms());
        println!("postings:         {}", s.postings);
        println!("blocks:           {} (avg {:.1} postings)", s.num_blocks, s.avg_block_len());
        println!("compression:      {:.2}x", s.compression_ratio());
        println!(
            "codec:            {} ({:.2} bits/posting)",
            sharded.shard(0).codec().name(),
            s.bits_per_posting()
        );
        for (i, shard) in sharded.shards().iter().enumerate() {
            println!("shard {i} source:   {}", source_line(shard));
        }
        return Ok(());
    }
    let index = load_index_mode(path, mmap)?;
    let s = index.size_stats();
    println!("documents:        {}", index.num_docs());
    println!("terms:            {}", index.num_terms());
    println!("postings:         {}", s.postings);
    println!("blocks:           {} (avg {:.1} postings)", s.num_blocks, s.avg_block_len());
    println!("uncompressed:     {} KiB", s.uncompressed_bytes / 1024);
    println!(
        "compressed:       {} KiB (payload {} + metadata {} + skips {})",
        s.compressed_bytes() / 1024,
        s.payload_bytes / 1024,
        s.metadata_bytes / 1024,
        s.skip_bytes / 1024
    );
    println!("compression:      {:.2}x", s.compression_ratio());
    println!(
        "codec:            {} ({:.2} bits/posting)",
        index.codec().name(),
        s.bits_per_posting()
    );
    println!("avgdl:            {:.1}", index.avgdl());
    println!("source:           {}", source_line(&index));
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let parsed = split_args(args);
    let flag = |n: &str| parsed.flag(n);
    let [path] = parsed.positional[..] else {
        return Err(
            "usage: iiu inspect <index-file> [--fault-rate R] [--trials N] [--seed S]".into(),
        );
    };
    if std::path::Path::new(path).is_dir() {
        return inspect_incremental(path, &parsed);
    }
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    println!("file:     {path} ({} bytes)", bytes.len());

    if is_sharded(&bytes) {
        return inspect_sharded(path, &bytes, &parsed);
    }

    let magic = bytes
        .get(..8)
        .map(|m| u64::from_le_bytes([m[0], m[1], m[2], m[3], m[4], m[5], m[6], m[7]]));
    let (version, checked) = match magic {
        Some(MAGIC) => ("v4 (per-index codec id)", true),
        Some(MAGIC_V3) => ("v3 (block-max score bounds)", true),
        Some(MAGIC_V2) => ("v2", true),
        Some(MAGIC_V1) => ("v1 (legacy)", false),
        _ => ("unrecognized", false),
    };
    println!("format:   {version}");

    let index = deserialize(&bytes).map_err(|e| format!("load failed: {e}"))?;
    println!(
        "load:     ok ({})",
        if checked {
            "header, doc-length, per-term and footer checksums verified"
        } else {
            "no checksums in this format version"
        }
    );
    index.validate().map_err(|e| format!("validation failed: {e}"))?;
    println!("validate: ok (structural invariants hold)");
    if parsed.flag("mmap").is_some() {
        // Cross-check the zero-copy loader: map the same file, deep-validate
        // the mapped assembly (which exercises every lazy record CRC), and
        // require bit-identity with the heap load.
        let mapped = iiu_index::storage::map_index(path.as_ref())
            .map_err(|e| format!("mmap load failed: {e}"))?;
        mapped.validate().map_err(|e| format!("mmap validation failed: {e}"))?;
        if mapped != index {
            return Err("mmap load differs from heap load".into());
        }
        println!("mmap:     ok (bit-identical to heap load; {})", source_line(&mapped));
    }
    let s = index.size_stats();
    println!(
        "codec:    {} ({:.2} bits/posting, compression {:.2}x)",
        index.codec().name(),
        s.bits_per_posting(),
        s.compression_ratio()
    );
    println!(
        "contents: {} documents, {} terms, {} postings",
        index.num_docs(),
        index.num_terms(),
        s.postings
    );

    let Some(rate) = flag("fault-rate") else {
        return Ok(());
    };
    let rate: f64 = parse_num(rate, "--fault-rate")?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--fault-rate must be in 0..=1, got {rate}"));
    }
    let trials: u64 = parse_num(flag("trials").unwrap_or("1000"), "--trials")?;
    let seed: u64 = parse_num(flag("seed").unwrap_or("7"), "--seed")?;
    // Each trial stacks enough single corruptions to hit `rate` of the file.
    let per_trial = ((rate * bytes.len() as f64).ceil() as u64).max(1);

    let (mut typed, mut checksums, mut equal, mut divergent, mut panics) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for t in 0..trials {
        let mut mutated = bytes.clone();
        for i in 0..per_trial {
            let trial_seed = seed
                .wrapping_add(t.wrapping_mul(per_trial).wrapping_add(i))
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            mutated = corrupt(&mutated, trial_seed).0;
        }
        // A panic anywhere in the load path is itself a reportable failure.
        match std::panic::catch_unwind(|| deserialize(&mutated)) {
            Err(_) => panics += 1,
            Ok(Err(e)) => {
                typed += 1;
                if matches!(e, IndexError::ChecksumMismatch { .. }) {
                    checksums += 1;
                }
            }
            Ok(Ok(loaded)) => {
                if loaded == index {
                    equal += 1;
                } else {
                    divergent += 1;
                }
            }
        }
    }

    println!();
    println!("fault injection: {trials} trials x {per_trial} corruption(s), seed {seed}");
    println!("  rejected with typed error:    {typed}  ({checksums} by checksum)");
    println!("  accepted, semantically equal: {equal}");
    println!("  accepted, DIVERGENT:          {divergent}");
    println!("  panics:                       {panics}");
    if divergent > 0 || panics > 0 {
        return Err(format!(
            "survival: FAIL ({divergent} silent corruption(s), {panics} panic(s))"
        ));
    }
    println!("survival: PASS");
    Ok(())
}

fn inspect_incremental(path: &str, parsed: &Args<'_>) -> Result<(), String> {
    if parsed.flag("fault-rate").is_some() {
        return Err("--fault-rate applies to index files; the incremental directory's \
             torn-write recovery is exercised by the recovery_chaos test campaign"
            .into());
    }
    println!("file:     {path} (incremental index directory)");
    let codec = dir_codec(path.as_ref());
    println!("format:   WAL + sealed segments ({} codec)", codec.name());
    let opts = IncrementalOptions { codec, ..IncrementalOptions::default() };
    let inc = IncrementalIndex::open(path.as_ref(), opts)
        .map_err(|e| format!("recovery failed: {e}"))?;
    println!("recovery: {}", inc.recovery_report());
    let metas = inc.segment_metas();
    println!("segments: {} sealed, {} document(s)", metas.len(), inc.sealed_docs());
    for m in &metas {
        println!("          {} (docs {}..{})", m.file_name, m.start, m.end());
    }
    println!(
        "wal:      {} buffered document(s) (docs {}..{}, durable in the WAL only)",
        inc.buffered_docs(),
        inc.sealed_docs(),
        inc.num_docs()
    );
    let index = inc.to_one_shot().map_err(|e| format!("materialization failed: {e}"))?;
    index.validate().map_err(|e| format!("validation failed: {e}"))?;
    println!("validate: ok (one-shot equivalent passes structural invariants)");
    println!(
        "contents: {} documents, {} terms, {} postings, avgdl {:.1}",
        index.num_docs(),
        index.num_terms(),
        index.size_stats().postings,
        index.avgdl()
    );
    Ok(())
}

fn cmd_ingest(args: &[String]) -> Result<(), String> {
    let parsed = split_args(args);
    let flag = |n: &str| parsed.flag(n);
    let [dir] = parsed.positional[..] else {
        return Err("usage: iiu ingest <index-dir> [--docs N] [--batch B] \
             [--preset ccnews|clueweb] [--seed S] [--seal-every N] [--merge-every N] \
             [--file corpus.txt] [--seal yes]"
            .into());
    };
    let docs: u32 = parse_num(flag("docs").unwrap_or("50000"), "--docs")?;
    let batch: usize = parse_num(flag("batch").unwrap_or("1024"), "--batch")?;
    let seed: u64 = parse_num(flag("seed").unwrap_or("42"), "--seed")?;
    let seal_every: usize = parse_num(flag("seal-every").unwrap_or("4096"), "--seal-every")?;
    let merge_every: usize = parse_num(flag("merge-every").unwrap_or("8"), "--merge-every")?;
    let seal_final = flag("seal").is_some();
    // Without an explicit --codec, resuming into an existing directory
    // keeps sealing with whatever codec its segments already use.
    let codec = match flag("codec") {
        Some(v) => parse_codec(v)?,
        None => dir_codec(dir.as_ref()),
    };
    if batch == 0 {
        return Err("--batch must be at least 1".into());
    }

    let ingest_docs: Vec<IngestDoc> = if let Some(file) = flag("file") {
        let text =
            std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| IngestDoc::from_tokens(l.split_whitespace()))
            .collect()
    } else {
        let mut cfg = match flag("preset").unwrap_or("ccnews") {
            "ccnews" => CorpusConfig::ccnews_like(docs),
            "clueweb" => CorpusConfig::clueweb_like(docs),
            other => return Err(format!("unknown preset {other:?}")),
        };
        cfg.seed = seed;
        cfg.generate().to_docs()
    };
    println!("ingesting {} documents in batches of {batch}", ingest_docs.len());

    let opts = IncrementalOptions {
        seal_threshold: seal_every,
        merge_threshold: merge_every,
        codec,
        ..IncrementalOptions::default()
    };
    let mut inc = IncrementalIndex::open(dir.as_ref(), opts)
        .map_err(|e| format!("cannot open {dir}: {e}"))?;
    let report = inc.recovery_report();
    if inc.num_docs() > 0 || report.wal_torn_bytes_truncated > 0 || report.wal_header_rebuilt {
        println!("recovery: {report}");
    }
    for chunk in ingest_docs.chunks(batch) {
        // Acknowledged (returned) ⇒ the whole batch is fsynced in the WAL.
        inc.ingest_batch(chunk).map_err(|e| format!("ingest failed: {e}"))?;
    }
    if seal_final {
        inc.seal().map_err(|e| format!("final seal failed: {e}"))?;
    }
    println!(
        "wrote {dir}: {} documents ({} sealed into {} segment(s), {} WAL-buffered, {} codec)",
        inc.num_docs(),
        inc.sealed_docs(),
        inc.segment_metas().len(),
        inc.buffered_docs(),
        codec.name()
    );
    println!("every acknowledged batch is WAL-durable; crash recovery replays the rest");
    Ok(())
}

fn inspect_sharded(path: &str, bytes: &[u8], parsed: &Args<'_>) -> Result<(), String> {
    // Scan first: every shard body is CRC-cross-checked *independently*,
    // so one corrupt shard is flagged in place instead of hiding the
    // health of every other shard behind a load error.
    let scan = scan_sharded(bytes).map_err(|e| format!("header scan failed: {e}"))?;
    println!(
        "format:   sharded manifest v{} (round-robin document shards{})",
        scan.version,
        if scan.version >= 2 { ", per-shard body table" } else { "" }
    );
    println!(
        "scan:     {} shards, {} documents claimed, footer {}",
        scan.num_shards,
        scan.num_docs,
        if scan.footer_ok { "ok" } else { "FAILED" }
    );
    println!("          shard    docs   (expected)    postings    body");
    for (s, status) in scan.shards.iter().enumerate() {
        let expected = scan.expected_docs(s);
        match status {
            ShardBodyStatus::Ok { docs, postings } => {
                let balance = if *docs == expected { "ok" } else { "IMBALANCED" };
                println!(
                    "          {s:>5} {docs:>7}   ({expected:>8})  {postings:>10}    {balance}"
                );
            }
            ShardBodyStatus::Corrupt { error } => {
                println!(
                    "          {s:>5} {:>7}   ({expected:>8})  {:>10}    CORRUPT: {error}",
                    "?", "?"
                );
            }
            _ => {
                println!(
                    "          {s:>5} {:>7}   ({expected:>8})  {:>10}    unscanned (v1 manifest, earlier shard corrupt)",
                    "?", "?"
                );
            }
        }
    }
    if !scan.is_clean() {
        let corrupt = scan.corrupt_shards();
        return Err(format!(
            "scan: FAIL ({}/{} shard bodies corrupt: {corrupt:?})",
            corrupt.len(),
            scan.num_shards
        ));
    }

    let sharded = deserialize_sharded(bytes).map_err(|e| format!("load failed: {e}"))?;
    println!("load:     ok (shard header, per-shard and footer checksums verified)");
    sharded.validate().map_err(|e| format!("validation failed: {e}"))?;
    println!("validate: ok (per-shard invariants and round-robin balance hold)");
    if parsed.flag("mmap").is_some() {
        let mapped = iiu_index::storage::map_sharded(path.as_ref())
            .map_err(|e| format!("mmap load failed: {e}"))?;
        mapped.validate().map_err(|e| format!("mmap validation failed: {e}"))?;
        if mapped != sharded {
            return Err("mmap load differs from heap load".into());
        }
        println!("mmap:     ok (bit-identical to heap load)");
        for (i, shard) in mapped.shards().iter().enumerate() {
            println!("          shard {i}: {}", source_line(shard));
        }
    }
    // validate() enforces that every shard agrees on the codec, so one
    // line covers the whole manifest.
    let mut stats = iiu_index::IndexSizeStats::default();
    for s in 0..sharded.num_shards() {
        stats.merge(&sharded.shard(s).size_stats());
    }
    println!(
        "codec:    {} across all shards ({:.2} bits/posting, compression {:.2}x)",
        sharded.shard(0).codec().name(),
        stats.bits_per_posting(),
        stats.compression_ratio()
    );
    println!(
        "contents: {} documents across {} shards, {} terms",
        sharded.num_docs(),
        sharded.num_shards(),
        sharded.shard(0).num_terms()
    );
    println!("balance:  shard    docs    postings    blocks    bounds-coverage");
    for b in sharded.balance() {
        println!(
            "          {:>5} {:>7} {:>11} {:>9}    {}/{} nonempty lists bounded",
            b.shard, b.docs, b.postings, b.blocks, b.bounded_lists, b.nonempty_lists
        );
    }

    let Some(rate) = parsed.flag("fault-rate") else {
        return Ok(());
    };
    let rate: f64 = parse_num(rate, "--fault-rate")?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--fault-rate must be in 0..=1, got {rate}"));
    }
    let trials: u64 = parse_num(parsed.flag("trials").unwrap_or("1000"), "--trials")?;
    let seed: u64 = parse_num(parsed.flag("seed").unwrap_or("7"), "--seed")?;
    let per_trial = ((rate * bytes.len() as f64).ceil() as u64).max(1);

    let (mut typed, mut checksums, mut equal, mut divergent, mut panics) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for t in 0..trials {
        let mut mutated = bytes.to_vec();
        for i in 0..per_trial {
            let trial_seed = seed
                .wrapping_add(t.wrapping_mul(per_trial).wrapping_add(i))
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            mutated = corrupt(&mutated, trial_seed).0;
        }
        match std::panic::catch_unwind(|| deserialize_sharded(&mutated)) {
            Err(_) => panics += 1,
            Ok(Err(e)) => {
                typed += 1;
                if matches!(e, IndexError::ChecksumMismatch { .. }) {
                    checksums += 1;
                }
            }
            Ok(Ok(loaded)) => {
                if loaded == sharded {
                    equal += 1;
                } else {
                    divergent += 1;
                }
            }
        }
    }

    println!();
    println!("fault injection: {trials} trials x {per_trial} corruption(s), seed {seed}");
    println!("  rejected with typed error:    {typed}  ({checksums} by checksum)");
    println!("  accepted, semantically equal: {equal}");
    println!("  accepted, DIVERGENT:          {divergent}");
    println!("  panics:                       {panics}");
    if divergent > 0 || panics > 0 {
        return Err(format!(
            "survival: FAIL ({divergent} silent corruption(s), {panics} panic(s))"
        ));
    }
    println!("survival: PASS");
    Ok(())
}

fn cmd_serve_bench(args: &[String]) -> Result<(), String> {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let parsed = split_args(args);
    let flag = |n: &str| parsed.flag(n);
    let [path] = parsed.positional[..] else {
        return Err("usage: iiu serve-bench <index-file> [--workers N] [--rate QPS] \
             [--queries N] [--deadline-ms MS] [--fault-rate R] [--seed S] \
             [--unknown-rate R] [--pruned yes] [--shards N] \
             [--shard-fault-rate R] [--shard-stall-rate R] [--shard-stall-ms MS] \
             [--fail-closed yes] [--no-device yes] [--hybrid yes] [--zipf S]"
            .into());
    };
    let workers: usize = parse_num(flag("workers").unwrap_or("4"), "--workers")?;
    let shards: usize = parse_num(flag("shards").unwrap_or("1"), "--shards")?;
    let rate: f64 = parse_num(flag("rate").unwrap_or("200"), "--rate")?;
    let queries: usize = parse_num(flag("queries").unwrap_or("2000"), "--queries")?;
    let deadline_ms: u64 = parse_num(flag("deadline-ms").unwrap_or("250"), "--deadline-ms")?;
    let fault_rate: f64 = parse_num(flag("fault-rate").unwrap_or("0"), "--fault-rate")?;
    let seed: u64 = parse_num(flag("seed").unwrap_or("7"), "--seed")?;
    let unknown_rate: f64 = parse_num(flag("unknown-rate").unwrap_or("0"), "--unknown-rate")?;
    let k: usize = parse_num(flag("k").unwrap_or("10"), "--k")?;
    let pruned = flag("pruned").is_some();
    let shard_fault_rate: f64 =
        parse_num(flag("shard-fault-rate").unwrap_or("0"), "--shard-fault-rate")?;
    let shard_stall_rate: f64 =
        parse_num(flag("shard-stall-rate").unwrap_or("0"), "--shard-stall-rate")?;
    let shard_stall_ms: u64 =
        parse_num(flag("shard-stall-ms").unwrap_or("100"), "--shard-stall-ms")?;
    let fail_closed = flag("fail-closed").is_some();
    let no_device = flag("no-device").is_some();
    let hybrid = flag("hybrid").is_some();
    let zipf: f64 = parse_num(flag("zipf").unwrap_or("0"), "--zipf")?;
    if !(zipf.is_finite() && zipf >= 0.0) {
        return Err("--zipf must be a non-negative skew exponent".into());
    }
    if !(0.0..=1.0).contains(&fault_rate) || !(0.0..=1.0).contains(&unknown_rate) {
        return Err("--fault-rate and --unknown-rate must be in 0..=1".into());
    }
    if !(0.0..=1.0).contains(&shard_fault_rate) || !(0.0..=1.0).contains(&shard_stall_rate) {
        return Err("--shard-fault-rate and --shard-stall-rate must be in 0..=1".into());
    }
    if !(rate.is_finite() && rate > 0.0) {
        return Err("--rate must be positive".into());
    }

    // --mmap serves posting bytes from the page cache (manifests merge to
    // the heap copy the service's Arc<InvertedIndex> needs either way).
    let index = Arc::new(load_index_mode(path, flag("mmap").is_some())?);
    let stream = iiu_workloads::traffic::open_loop(
        &index,
        &TrafficConfig {
            rate_qps: rate,
            n_queries: queries,
            unknown_term_rate: unknown_rate,
            seed,
            zipf_skew: zipf,
            ..TrafficConfig::default()
        },
    );
    let shard_chaos = iiu_serve::ShardChaosPlan {
        panic_rate: shard_fault_rate,
        stall_rate: shard_stall_rate,
        stall: Duration::from_millis(shard_stall_ms),
        seed: seed ^ 0x5AD,
        ..iiu_serve::ShardChaosPlan::NONE
    };
    let cfg = ServeConfig {
        workers,
        shards: shards.max(1),
        default_deadline: Duration::from_millis(deadline_ms),
        fault: FaultPlan {
            stall_rate: fault_rate,
            // --no-device yes sabotages every device attempt: the breaker
            // opens and the whole stream lands on the CPU fallback, which
            // is where the shard-chaos knobs live.
            burst: no_device.then_some((0, u64::MAX)),
            seed,
            ..FaultPlan::NONE
        },
        pruned_cpu_fallback: pruned,
        shard_chaos,
        fail_closed_shards: fail_closed,
        scheduler: iiu_serve::SchedulerConfig {
            hybrid,
            ..iiu_serve::SchedulerConfig::default()
        },
        ..ServeConfig::default()
    };
    println!(
        "serve-bench: {queries} queries at {rate} qps, {workers} workers, \
         deadline {deadline_ms} ms, fault rate {fault_rate}{}{}{}{}{}",
        if hybrid { ", hybrid scheduler" } else { "" },
        if zipf > 0.0 { format!(", zipf skew {zipf}") } else { String::new() },
        if pruned { ", pruned CPU fallback" } else { "" },
        if shards > 1 { format!(", {shards}-shard CPU fallback") } else { String::new() },
        if shards > 1 && (shard_fault_rate > 0.0 || shard_stall_rate > 0.0) {
            format!(
                ", shard chaos (panic {shard_fault_rate}, stall {shard_stall_rate} \
                 x {shard_stall_ms} ms, {})",
                if fail_closed { "fail-closed" } else { "fail-soft" }
            )
        } else {
            String::new()
        }
    );

    let mut svc = QueryService::start(Arc::clone(&index), cfg);
    let start = Instant::now();
    let mut pending = Vec::with_capacity(queries);
    let (mut shed_at_admission, mut parse_failures) = (0u64, 0u64);
    for tq in &stream {
        // Open loop: submit on schedule no matter how far behind the
        // service is; lateness shows up as queueing delay and shedding.
        if let Some(wait) = tq.at.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let Ok(query) = Query::parse(&tq.text) else {
            parse_failures += 1;
            continue;
        };
        match svc.submit(query, k) {
            Ok(p) => pending.push(p),
            Err(_) => shed_at_admission += 1,
        }
    }
    let offered_secs = start.elapsed().as_secs_f64();
    let mut answered = 0u64;
    let mut rejected = 0u64;
    for p in pending {
        match p.wait() {
            Ok(_) => answered += 1,
            Err(_) => rejected += 1,
        }
    }
    svc.shutdown();

    let h = svc.health();
    if parse_failures > 0 {
        return Err(format!("{parse_failures} generated queries failed to parse"));
    }
    println!();
    println!("offered:       {queries} queries in {offered_secs:.2} s");
    println!("answered:      {answered} ({} clean, {} degraded)", h.completed, h.degraded_ok);
    println!(
        "rejected:      {} ({} shed on overload, {} on deadline, {} failed)",
        rejected + shed_at_admission,
        h.shed_overload,
        h.shed_deadline,
        h.failed
    );
    println!(
        "resilience:    {} retries, {} cpu fallbacks, {} isolated panics",
        h.retries, h.cpu_fallbacks, h.panicked
    );
    if h.cpu_fallbacks > 0 {
        println!(
            "fallback work: {} candidates scanned, {:.2} ms modeled CPU time",
            h.fallback_candidates,
            h.fallback_modeled_ns as f64 / 1e6
        );
    }
    if h.shards > 1 {
        println!(
            "shards:        {} workers, {} partial answers, {} unsharded rescues, \
             sched {} inline / {} fanout, docs scored per shard {:?}",
            h.shards,
            h.shard_partials,
            h.shard_rescues,
            h.sched_inline,
            h.sched_fanout,
            h.shard_docs_scored
        );
        for sh in &h.shard_health {
            println!(
                "  shard {}: {} — {} failures ({} panics, {} timeouts), \
                 quarantine {} trips / {} recoveries",
                sh.shard,
                sh.health,
                sh.failures,
                sh.panics,
                sh.timeouts,
                sh.quarantine_trips,
                sh.quarantine_recoveries,
            );
        }
        for w in &h.pool_workers {
            println!(
                "  pool worker {}: {} — {} tasks, {} respawns",
                w.worker,
                if w.alive { "alive" } else { "dead" },
                w.tasks_completed,
                w.respawns,
            );
        }
    }
    println!(
        "breaker:       {} ({} trips, {} recoveries)",
        h.breaker, h.breaker_trips, h.breaker_recoveries
    );
    println!("shed rate:     {:.2}%", h.shed_rate() * 100.0);
    match (h.p50, h.p99, h.p999) {
        (Some(p50), Some(p99), Some(p999)) => {
            println!("latency:       p50 {p50}, p99 {p99}, p999 {p999}");
        }
        _ => println!("latency:       no queries answered"),
    }
    if h.submitted != h.answered() + h.rejected_total() {
        return Err(format!(
            "accounting violated: {} submitted vs {} answered + {} rejected",
            h.submitted,
            h.answered(),
            h.rejected_total()
        ));
    }
    Ok(())
}

fn cmd_search(args: &[String]) -> Result<(), String> {
    let parsed = split_args(args);
    let flag = |n: &str| parsed.flag(n);
    let [path, query_text] = parsed.positional[..] else {
        return Err(
            "usage: iiu search <index-file> \"<query>\" [--k N] [--engine cpu|iiu|both] \
             [--pruned yes] [--shards N]"
                .into(),
        );
    };
    let k: usize = parse_num(flag("k").unwrap_or("10"), "--k")?;
    let cores: usize = parse_num(flag("cores").unwrap_or("8"), "--cores")?;
    let engine = flag("engine").unwrap_or("both");
    let pruned = flag("pruned").is_some();
    let mmap = flag("mmap").is_some();
    let shards: usize = parse_num(flag("shards").unwrap_or("1"), "--shards")?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let index = match load_cli_index(path, mmap)? {
        CliIndex::Sharded(sharded) if mmap => {
            // A mapped manifest serves straight from the mapping: the
            // sharded baseline engine fans out over the mapped shards with
            // no merged heap copy.
            println!("[mapped manifest: {} shards served zero-copy]", sharded.num_shards());
            let query = Query::parse(query_text).map_err(|e| e.to_string())?;
            let eng = ShardedSearchEngine::new(sharded).with_pruning(pruned);
            let r = eng.search_ref(&query, k).map_err(|e| e.to_string())?;
            println!(
                "baseline ({} shards, mmap{}): {} candidates, {:.2} us",
                eng.num_shards(),
                if pruned { ", pruned" } else { "" },
                r.candidates,
                r.latency_ns() / 1e3
            );
            for d in &r.degraded {
                println!("  [degraded: {d}]");
            }
            for hit in &r.hits {
                println!("  doc {:>8}  score {:.4}", hit.doc_id, hit.score);
            }
            return Ok(());
        }
        CliIndex::Sharded(sharded) => {
            sharded.merge().map_err(|e| format!("cannot merge shards of {path}: {e}"))?
        }
        CliIndex::Plain(index) => *index,
    };
    if mmap {
        println!("[source: {}]", source_line(&index));
    }
    let positions =
        std::fs::read(format!("{path}.pos")).ok().and_then(|b| PositionIndex::from_bytes(&b));
    if positions.is_some() {
        println!("[loaded positional sidecar {path}.pos]");
    }
    let query = Query::parse(query_text).map_err(|e| e.to_string())?;

    let show = |label: &str, r: &SearchResponse| {
        println!(
            "{label}: {} candidates, {:.2} us (device {:.2} us, top-k {:.2} us)",
            r.candidates,
            r.latency_ns() / 1e3,
            r.breakdown.device_ns / 1e3,
            r.breakdown.topk_ns / 1e3
        );
        for d in &r.degraded {
            println!("  [degraded: {d}]");
        }
        for hit in &r.hits {
            println!("  doc {:>8}  score {:.4}", hit.doc_id, hit.score);
        }
    };

    let cpu_result = if engine != "iiu" {
        let mut cpu = CpuSearchEngine::new(&index).with_pruning(pruned);
        if let Some(p) = &positions {
            cpu = cpu.with_position_index(p);
        }
        let r = cpu.search(&query, k).map_err(|e| e.to_string())?;
        show(if pruned { "baseline (pruned)" } else { "baseline" }, &r);
        Some(r)
    } else {
        None
    };
    if shards > 1 && engine != "iiu" {
        // Same baseline fanned across document shards: bit-identical hits,
        // critical-path (not summed) modeled latency.
        let eng = ShardedSearchEngine::split(&index, shards)
            .map_err(|e| e.to_string())?
            .with_pruning(pruned);
        let r = eng.search_ref(&query, k).map_err(|e| e.to_string())?;
        show(
            &format!("baseline ({shards} shards{})", if pruned { ", pruned" } else { "" }),
            &r,
        );
        if let Some(c) = &cpu_result {
            println!("shard speedup: {:.1}x", c.latency_ns() / r.latency_ns());
            assert_eq!(c.hits, r.hits, "sharded baseline must agree with unsharded");
        }
    }
    if engine != "cpu" {
        let mut iiu = IiuSearchEngine::with_config(&index, Default::default(), cores);
        if let Some(p) = &positions {
            iiu = iiu.with_position_index(p);
        }
        let r = iiu.search(&query, k).map_err(|e| e.to_string())?;
        show("IIU", &r);
        if let Some(c) = cpu_result {
            println!("speedup: {:.1}x", c.latency_ns() / r.latency_ns());
            assert_eq!(c.hits, r.hits, "engines must agree");
        }
    }
    Ok(())
}
