//! Umbrella crate of the IIU reproduction: re-exports the public API from
//! [`iiu_core`] so `iiu::Query`, `iiu::IiuSearchEngine`, etc. resolve, and
//! hosts the workspace-level examples, integration tests and the `iiu`
//! command-line tool.
//!
//! See the README for the map of the workspace and DESIGN.md /
//! EXPERIMENTS.md for the reproduction methodology and results.

pub use iiu_core::*;
