//! Compression deep-dive: how the dynamic partitioner splits a bursty
//! posting list, and how the IIU scheme compares against the classic
//! codecs on the same data.
//!
//! ```sh
//! cargo run --release --example codec_explorer
//! ```

use iiu_codecs::Codec as _;
use iiu_codecs::{all_codecs, VByte};
use iiu_index::{EncodedList, Partitioner, Posting, PostingList};
use iiu_workloads::CorpusConfig;

fn main() {
    // A hand-made bursty list: three dense runs separated by big jumps —
    // the pattern dynamic partitioning exists for.
    let mut postings = Vec::new();
    let mut doc = 10u32;
    for run in 0..3 {
        for i in 0..40u32 {
            postings.push(Posting::new(doc, 1 + (i % 5)));
            doc += 1 + (i % 2);
        }
        doc += 100_000 * (run + 1);
    }
    let list = PostingList::from_sorted(postings);

    println!("=== block structure under the two partitioners ===");
    for part in [Partitioner::dynamic(256), Partitioner::fixed(128)] {
        let lens = part.partition(&list);
        let enc = EncodedList::encode(&list, &lens).expect("encodes");
        println!("\n{part:?}: {} blocks, {} bytes", enc.num_blocks(), enc.compressed_bytes());
        for (i, (meta, skip)) in enc.metas().iter().zip(enc.skips()).enumerate() {
            println!(
                "  block {i}: skip={skip:>7}  count={:>3}  d-gap bits={:>2}  tf bits={}",
                meta.count, meta.dn_bits, meta.tf_bits
            );
        }
    }

    println!("\n=== codecs on a realistic list (head term of a CC-News-like corpus) ===");
    let corpus = CorpusConfig::ccnews_like(40_000).generate();
    let (term, head) = &corpus.lists[0];
    println!(
        "list {term:?}: {} postings, {} bytes raw",
        head.len(),
        head.uncompressed_bytes()
    );
    let ids = head.doc_ids();
    let tfs = head.term_freqs();
    println!("{:<12} {:>10} {:>8}", "codec", "bytes", "ratio");
    for codec in all_codecs() {
        let docs = codec.encode_sorted(&ids).len();
        let tf = codec
            .encode_values(&tfs)
            .map(|b| b.len())
            .unwrap_or_else(|| VByte.encode_values(&tfs).expect("vbyte").len());
        let total = docs + tf;
        println!(
            "{:<12} {:>10} {:>7.2}x",
            codec.name(),
            total,
            head.uncompressed_bytes() as f64 / total as f64
        );
    }
    for part in [Partitioner::dynamic(256), Partitioner::fixed(128)] {
        let enc = EncodedList::encode(head, &part.partition(head)).expect("encodes");
        println!(
            "{:<12} {:>10} {:>7.2}x   ({} blocks)",
            format!("IIU {part:?}").chars().take(12).collect::<String>(),
            enc.compressed_bytes(),
            head.uncompressed_bytes() as f64 / enc.compressed_bytes() as f64,
            enc.num_blocks()
        );
    }

    // Verify everything round-trips.
    for codec in all_codecs() {
        assert_eq!(codec.decode_sorted(&codec.encode_sorted(&ids), ids.len()), ids);
    }
    println!("\nall codecs round-tripped the list exactly");
}
