//! A tour of the simulated microarchitecture: what the Block Reader, DCUs,
//! SUs, BSU and DRAM are doing for each query type, and how the Fig. 12
//! interconnect configurations trade latency against throughput.
//!
//! ```sh
//! cargo run --release --example accelerator_tour
//! ```

use iiu_sim::{HostModel, IiuMachine, SimConfig, SimQuery};
use iiu_workloads::{CorpusConfig, QuerySampler};

fn main() {
    let index = CorpusConfig::ccnews_like(40_000).generate().into_default_index();
    let machine = IiuMachine::new(&index, SimConfig::default());
    let host = HostModel::default();

    let mut sampler = QuerySampler::with_bias(&index, 7, 0.5, 400);
    let single = index.term_id(&sampler.single_queries(1)[0]).expect("sampled");
    let (a, b) = {
        let (a, b) = sampler.pair_queries(1).remove(0);
        (index.term_id(&a).expect("sampled"), index.term_id(&b).expect("sampled"))
    };

    println!("=== intra-query parallelism (Fig. 12a): one query, 1..8 cores ===");
    for (label, query) in [
        ("single-term", SimQuery::Single(single)),
        ("intersection", SimQuery::Intersect(a, b)),
        ("union", SimQuery::Union(a, b)),
    ] {
        println!("\n{label}:");
        for cores in [1usize, 2, 4, 8] {
            let run = machine.run_query(query, cores).expect("sim completes");
            println!(
                "  {cores} core(s): {:>7} cycles, {:>6} postings decoded, \
                 {:>5} results, bw {:>4.1}%, host top-k {:>6.1} us",
                run.cycles,
                run.stats.postings_decoded,
                run.stats.candidates,
                100.0 * run.mem.bandwidth_utilization,
                host.topk_ns(run.stats.candidates) / 1e3,
            );
        }
    }

    println!("\n=== what intersection hardware actually did (1 core) ===");
    let run = machine.run_query(SimQuery::Intersect(a, b), 1).expect("sim completes");
    println!("  L1 blocks fetched:  {}", run.stats.l1_blocks_fetched);
    println!(
        "  L1 blocks skipped:  {} (membership testing via skip list)",
        run.stats.l1_blocks_skipped
    );
    println!(
        "  BSU probes:         {} ({} served by the 32-entry traversal cache, {:.0}%)",
        run.stats.bsu_probes,
        run.stats.bsu_cache_hits,
        100.0 * run.stats.bsu_cache_hits as f64 / run.stats.bsu_probes.max(1) as f64
    );
    println!("  dl-table line misses: {}", run.stats.dl_misses);
    println!("  matches written back: {}", run.stats.candidates);

    println!("\n=== inter-query parallelism (Fig. 12b): 32-query backlog, 1..8 units ===");
    let mut sampler = QuerySampler::with_bias(&index, 8, 0.5, 400);
    let queries: Vec<SimQuery> = sampler
        .single_queries(32)
        .iter()
        .map(|t| SimQuery::Single(index.term_id(t).expect("sampled")))
        .collect();
    for units in [1usize, 2, 4, 8] {
        let batch = machine.run_batch(&queries, units).expect("sim completes");
        println!(
            "  {units} unit(s): {:>8} cycles total, bw {:>4.1}%, peak MAI {:>3}/128",
            batch.cycles,
            100.0 * batch.mem.bandwidth_utilization,
            batch.mem.peak_mai,
        );
    }

    println!("\n=== area/power (Table 3 constants) ===");
    for c in iiu_sim::TABLE3 {
        println!(
            "  {:<16} x{:<2} {:>6.3} mm2 {:>7.1} mW",
            c.name, c.count, c.total_area_mm2, c.total_power_mw
        );
    }
    println!(
        "  total: {:.3} mm2, {:.3} W",
        iiu_sim::table3_total_area_mm2(),
        iiu_sim::table3_total_power_w()
    );
}
