//! Quickstart: build an index from raw text, run the three query types on
//! both engines, and compare their modeled latencies.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use iiu_core::{CpuSearchEngine, IiuSearchEngine, Query, SearchEngine};
use iiu_index::{BuildOptions, IndexBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy corpus. Real evaluations use the synthetic Zipfian corpora in
    // `iiu-workloads`; see the other examples.
    let docs = [
        "the inverted index is the fundamental data structure of search",
        "an accelerator for inverted index search processes compressed postings",
        "bit packing compresses postings into blocks with per block metadata",
        "the binary search unit walks the skip list with a traversal cache",
        "search engines score documents with bm25 and select the top k",
        "decompression dominates query time in software search engines",
        "the scoring unit computes bm25 with a pipelined fixed point divider",
        "intersection queries use the small versus small algorithm",
        "union queries merge two scored posting lists",
        "the block scheduler assigns compressed blocks to decompression units",
    ];
    let mut builder = IndexBuilder::new(BuildOptions::default());
    for d in docs {
        builder.add_document(d);
    }
    let index = builder.build();
    println!(
        "indexed {} documents, {} terms, compression ratio {:.2}x",
        index.num_docs(),
        index.num_terms(),
        index.size_stats().compression_ratio()
    );

    let mut cpu = CpuSearchEngine::new(&index);
    let mut iiu = IiuSearchEngine::new(&index);

    for text in
        ["search", "inverted AND search", "bm25 OR search", "(index OR unit) AND search"]
    {
        let query = Query::parse(text)?;
        let r_cpu = cpu.search(&query, 3)?;
        let r_iiu = iiu.search(&query, 3)?;
        assert_eq!(r_cpu.hits, r_iiu.hits, "engines must agree");

        println!("\nquery: {query}");
        for hit in &r_iiu.hits {
            println!(
                "  doc {:>2}  score {:.3}  {:?}",
                hit.doc_id, hit.score, docs[hit.doc_id as usize]
            );
        }
        println!(
            "  latency: baseline {:.2} us vs IIU {:.2} us",
            r_cpu.latency_ns() / 1e3,
            r_iiu.latency_ns() / 1e3,
        );
    }
    Ok(())
}
