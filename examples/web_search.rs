//! An end-to-end web-search scenario on a synthetic news corpus: build,
//! persist, reload, and serve a mixed query stream on both engines —
//! the workload the paper's introduction motivates.
//!
//! ```sh
//! cargo run --release --example web_search
//! ```

use iiu_core::{CpuSearchEngine, IiuSearchEngine, Query, SearchEngine};
use iiu_index::io::{deserialize, serialize};
use iiu_workloads::{CorpusConfig, QuerySampler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Offline: generate a CC-News-like corpus and build the index.
    let t0 = std::time::Instant::now();
    let corpus = CorpusConfig::ccnews_like(40_000).generate();
    println!(
        "generated corpus: {} docs, {} terms, {} postings",
        corpus.doc_lens.len(),
        corpus.lists.len(),
        corpus.total_postings()
    );
    let index = corpus.into_default_index();
    let stats = index.size_stats();
    println!(
        "built index in {:.1?}: {} blocks, ratio {:.2}x ({} KiB compressed)",
        t0.elapsed(),
        stats.num_blocks,
        stats.compression_ratio(),
        stats.compressed_bytes() / 1024
    );

    // 2. Persist and reload (the host's init(invFile) path, §4.1).
    let bytes = serialize(&index)?;
    println!("serialized index: {} KiB", bytes.len() / 1024);
    let index = deserialize(&bytes)?;

    // 3. Online: serve a mixed query stream.
    let mut sampler = QuerySampler::new(&index, 2026);
    let singles = sampler.single_queries(4);
    let pairs = sampler.pair_queries(4);
    let mut queries: Vec<Query> = Vec::new();
    for t in &singles {
        queries.push(Query::term(t.clone()));
    }
    for (a, b) in &pairs[..2] {
        queries.push(Query::parse(&format!("{a} AND {b}"))?);
    }
    for (a, b) in &pairs[2..] {
        queries.push(Query::parse(&format!("{a} OR {b}"))?);
    }

    let mut cpu = CpuSearchEngine::new(&index);
    let mut iiu = IiuSearchEngine::new(&index);
    let mut total_cpu = 0.0;
    let mut total_iiu = 0.0;
    println!(
        "\n{:<38} {:>10} {:>12} {:>12} {:>9}",
        "query", "hits", "baseline", "IIU", "speedup"
    );
    for q in &queries {
        let r_cpu = cpu.search(q, 10)?;
        let r_iiu = iiu.search(q, 10)?;
        assert_eq!(r_cpu.hits, r_iiu.hits);
        total_cpu += r_cpu.latency_ns();
        total_iiu += r_iiu.latency_ns();
        println!(
            "{:<38} {:>10} {:>9.1} us {:>9.1} us {:>8.1}x",
            q.to_string(),
            r_iiu.candidates,
            r_cpu.latency_ns() / 1e3,
            r_iiu.latency_ns() / 1e3,
            r_cpu.latency_ns() / r_iiu.latency_ns()
        );
    }
    println!(
        "\nworkload total: baseline {:.1} us, IIU {:.1} us ({:.1}x faster)",
        total_cpu / 1e3,
        total_iiu / 1e3,
        total_cpu / total_iiu
    );
    Ok(())
}
